//! A TCP search service over one shared [`IndexedDatabase`].
//!
//! The server speaks the [`alae::wire`] protocol (length-prefixed frames
//! over `std::net::TcpStream` — no external dependencies) and maps each
//! wire request onto the existing [`alae::search`] facade:
//!
//! * Every connection gets a lightweight handler thread that decodes
//!   request frames, applies the server-side guardrail caps
//!   ([`ServerConfig::max_deadline`], `max_top_k`, `max_work_budget`) and
//!   enqueues the query for the worker pool.
//! * A bounded pool of **search workers** drains the queue in *waves*:
//!   requests whose clamped configuration prefixes are byte-identical
//!   (same engine, scheme, threshold, shaping and guardrails) **and**
//!   whose queries are pinned to the same index epoch are coalesced into
//!   one [`Searcher`] and, when more than one query is waiting, one
//!   [`Searcher::search_batch`] call.
//! * Hits stream back incrementally: single-query waves run through
//!   [`Searcher::search_into`] with a [`HitSink`] that forwards each hit to
//!   the connection as its own frame the moment the engine shapes it.
//! * Guardrail outcomes ([`Termination::DeadlineExceeded`], budget
//!   exhaustion) travel in the closing done frame next to the partial hits,
//!   exactly as the in-process facade reports them.
//! * A client that disconnects mid-query only stops its own delivery: the
//!   forwarding sink observes the closed channel, returns
//!   [`SinkFlow::Stop`], and every other request in the wave is untouched.
//!
//! On top of that serving core sits the **resilience layer**:
//!
//! * [`reload`] — hot index swap.  [`Server::reload`] (also `POST
//!   /admin/reload` and SIGHUP via `alae-serve`) fully validates the new
//!   ALAEIDX file — checksums, version — *before* publishing it as a new
//!   epoch.  Queries pin their epoch at admission: in-flight queries
//!   finish on the old index, new queries land on the new one, and the
//!   old index deallocates when its last pin releases.  Zero downtime,
//!   zero mixed-epoch waves.
//! * [`fairness`] — a per-peer-IP token bucket and concurrent-query cap
//!   enforced at admission.  Refusals are typed
//!   ([`alae::wire::FrameKind::Rejected`] on TCP, HTTP 429 with
//!   `Retry-After`), so one flooding client is throttled while polite
//!   clients' latency stays bounded.
//! * [`conns`] — connection limits: a global ceiling with LRU eviction
//!   of idle connections, per-connection idle timeouts and a
//!   max-requests-per-connection bound.
//! * **Graceful drain** — [`Server::drain`] (also `POST /admin/drain`
//!   and SIGTERM) flips readiness off (load balancers see `/healthz`
//!   503), refuses new queries with a typed `draining` rejection, lets
//!   in-flight queries run to their deadlines, then stops the workers —
//!   bounded by a hard drain deadline.
//! * [`signals`] — hand-rolled `SIGHUP`/`SIGTERM`/`SIGINT` flags (no
//!   `libc` crate) polled by `alae-serve`'s watcher thread.
//! * Server-side **fault injection** (feature `fault-inject`) — the
//!   engine-level `FaultPlan` (`alae::search::FaultPlan`) gains I/O
//!   faults: `io-stall@N`, `drop-conn@N` and `slow-read=BYTES/S` let
//!   tests force wedged sockets, mid-stream disconnects and slow-loris
//!   reads deterministically.
//!
//! Two companion fronts make the service operable without a wire client:
//!
//! * [`metrics`] — a dependency-free registry of atomic counters, gauges
//!   and histograms threaded through the admission queue, the worker
//!   pool and every termination path; every query increments exactly one
//!   termination counter.  Rendered in the Prometheus text exposition
//!   format (see `docs/metrics.md`).
//! * [`http`] — a hand-rolled HTTP/1.1 front ([`Server::http_front`])
//!   serving `GET /metrics`, `GET /healthz`, `GET /debug/last-queries`,
//!   `POST /search` and the admin routes `POST /admin/reload` and
//!   `POST /admin/drain`; search requests go through the *same* admission
//!   queue, clamping and coalescing as TCP frame requests.
//! * [`trace`] — a feature-gated (default-on) ring buffer of per-query
//!   span records plus a separate ring of server lifecycle events
//!   (reloads, drains, evictions).
//!
//! The crate map and the life of a query across these layers are drawn
//! in `docs/architecture.md`; the operational contract (signals, drain
//! semantics, fairness knobs) in `docs/operations.md`.

#![deny(unsafe_code)]

pub mod conns;
pub mod fairness;
pub mod http;
pub mod metrics;
pub mod reload;
pub mod signals;
pub mod trace;

pub use fairness::FairnessConfig;
pub use reload::ReloadSummary;

use crate::conns::ConnRegistry;
use crate::fairness::{FairnessGate, PeerPermit};
use crate::metrics::Metrics;
use crate::reload::{IndexSlot, PinnedIndex};
use crate::trace::{QueryTrace, TraceLog, DEFAULT_TRACE_CAPACITY};
use alae::bioseq::Sequence;
use alae::search::{
    EngineCounters, EngineKind, HitSink, IndexedDatabase, SearchError, SearchHit, SearchRequest,
    Searcher, SinkFlow, Termination,
};
use alae::wire::{
    decode_request, encode_done, encode_error, encode_hit, encode_rejection, encode_request_config,
    read_frame, write_frame, CountingReader, CountingWriter, DoneSummary, FrameKind, RejectReason,
    Rejection,
};
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{IpAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

#[cfg(feature = "fault-inject")]
use alae::search::FaultPlan;
#[cfg(feature = "fault-inject")]
use alae::wire::ThrottledReader;

/// Server-side policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Search worker threads draining the request queue.
    pub workers: usize,
    /// Requests allowed to queue before new ones are refused with a
    /// typed `capacity` rejection (per server, across all connections).
    pub max_pending: usize,
    /// Cap applied to every request's [`SearchRequest::deadline`]; a
    /// request with no deadline gets this one.  `None` leaves deadlines to
    /// the client.
    pub max_deadline: Option<Duration>,
    /// Cap applied to every request's `top_k` (`None` = client's choice).
    pub max_top_k: Option<usize>,
    /// Cap applied to every request's `work_budget` (`None` = client's
    /// choice).
    pub max_work_budget: Option<u64>,
    /// How long a worker holds the first request of a wave open for
    /// compatible stragglers before running it.
    pub batch_window: Duration,
    /// Queries retained in the [`trace`] ring buffer (ignored when the
    /// crate is built without the `trace` feature).
    pub trace_capacity: usize,
    /// Per-peer token bucket and concurrency cap.
    pub fairness: FairnessConfig,
    /// Global ceiling on registered TCP frame connections; at the
    /// ceiling the longest-idle connection is evicted to admit a new one.
    pub max_connections: usize,
    /// A TCP frame connection with no traffic for this long is closed
    /// (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Requests served on one TCP frame connection before it is closed
    /// (bounds how long one peer can squat a slot).
    pub max_requests_per_conn: usize,
    /// Honor `X-Forwarded-For` on the HTTP front for fairness accounting
    /// (only enable behind a trusted proxy — the header is forgeable).
    pub trust_forwarded_for: bool,
    /// Deterministic server-side fault injection (tests only).  `None`
    /// falls back to the `ALAE_FAULT_PLAN` environment variable.
    #[cfg(feature = "fault-inject")]
    pub fault: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_pending: 64,
            max_deadline: None,
            max_top_k: None,
            max_work_budget: None,
            batch_window: Duration::from_millis(1),
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            fairness: FairnessConfig::default(),
            max_connections: 256,
            idle_timeout: Some(Duration::from_secs(60)),
            max_requests_per_conn: 10_000,
            trust_forwarded_for: false,
            #[cfg(feature = "fault-inject")]
            fault: None,
        }
    }
}

/// One queued query: the clamped request plus the channel its frames go
/// back through, and what the observability layer needs to describe it.
pub(crate) struct Pending {
    config_key: Vec<u8>,
    request: SearchRequest,
    codes: Vec<u8>,
    reply: mpsc::Sender<Event>,
    /// Which front admitted the query (`"tcp"` or `"http"`).
    proto: &'static str,
    /// Whether server-side clamping tightened any guardrail field.
    clamped: bool,
    /// When the query entered the admission queue.
    enqueued: Instant,
    /// The index epoch pinned at admission; the query runs on exactly
    /// this index regardless of reloads.
    pinned: Arc<PinnedIndex>,
    /// The per-peer concurrency lease, released when the query finishes
    /// (this struct drops at the end of its wave).
    #[allow(dead_code)]
    permit: Option<PeerPermit>,
}

/// What a worker sends back to a connection handler.
pub(crate) enum Event {
    Hit(SearchHit),
    Done(DoneSummary),
}

pub(crate) struct Shared {
    pub(crate) index: IndexSlot,
    /// Where the index was loaded from (reload target when `POST
    /// /admin/reload` has no body path; `None` for in-process indexes).
    pub(crate) index_path: Mutex<Option<PathBuf>>,
    pub(crate) config: ServerConfig,
    queue: Mutex<VecDeque<Pending>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    pending_count: AtomicUsize,
    /// Waves currently executing in workers (incremented under the queue
    /// lock at pickup, so `pending_count + busy_workers` never blips to
    /// zero while a query is in flight — the drain loop keys off both).
    busy_workers: AtomicUsize,
    pub(crate) metrics: Metrics,
    pub(crate) trace: TraceLog,
    /// Flipped by [`Server::set_ready`]; `GET /healthz` keys off this
    /// together with worker-pool liveness.
    pub(crate) ready: AtomicBool,
    /// Workers currently alive (decremented by a drop guard, so a worker
    /// that dies by panic takes the health check down with it).
    pub(crate) live_workers: AtomicUsize,
    pub(crate) fairness: Arc<FairnessGate>,
    pub(crate) conns: Arc<ConnRegistry>,
    /// Set by [`Server::drain`] / `POST /admin/drain`: new queries are
    /// refused with a typed `draining` rejection.
    pub(crate) draining: AtomicBool,
    /// Set by `POST /admin/drain` for the process watcher (`alae-serve`)
    /// to pick up and complete the drain.
    pub(crate) drain_requested: AtomicBool,
    /// Tells [`Server::serve`] to stop accepting and return.
    accept_closed: AtomicBool,
}

impl Shared {
    /// Pin the current index epoch (one short lock + `Arc` clone).
    pub(crate) fn pin_index(&self) -> Arc<PinnedIndex> {
        self.index.pin()
    }

    /// The effective fault plan: config override, else environment.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn fault_plan(&self) -> Option<FaultPlan> {
        self.config.fault.or_else(FaultPlan::from_env)
    }
}

/// What [`submit`] did with a query.
pub(crate) enum Submission {
    /// Refused at admission with a typed reason (capacity, fairness,
    /// draining); the metric for the reason has been incremented.
    Rejected(Rejection),
    /// The query codes do not fit the database alphabet; the typed
    /// summary carries [`Termination::Invalid`] and the termination
    /// counter has already been incremented.
    Invalid(DoneSummary),
    /// Enqueued; events arrive on the receiver, ending with
    /// [`Event::Done`].
    Enqueued(mpsc::Receiver<Event>),
}

/// The one admission path both fronts share: drain gate, per-peer
/// fairness, capacity check, guardrail clamping, alphabet validation,
/// then the queue.  Keeping TCP and HTTP on the same path is what makes
/// their hits identical by construction and lets every metric apply
/// uniformly.
pub(crate) fn submit(
    shared: &Shared,
    request: SearchRequest,
    codes: Vec<u8>,
    proto: &'static str,
    peer: Option<IpAddr>,
) -> Submission {
    if shared.draining.load(Ordering::SeqCst) {
        shared.metrics.rejected_draining.inc();
        return Submission::Rejected(Rejection {
            reason: RejectReason::Draining,
            retry_after: Some(Duration::from_secs(1)),
            message: "server is draining, not accepting new queries".into(),
        });
    }

    let permit = match peer {
        Some(peer) => match shared.fairness.admit(peer, &shared.metrics) {
            Ok(permit) => Some(permit),
            Err(rejection) => return Submission::Rejected(rejection),
        },
        None => None,
    };

    if shared.pending_count.load(Ordering::SeqCst) >= shared.config.max_pending {
        shared.metrics.rejected_capacity.inc();
        return Submission::Rejected(Rejection {
            reason: RejectReason::Capacity,
            retry_after: None,
            message: "server at capacity, retry later".into(),
        });
    }

    let original = request;
    let request = clamp_request(request, &shared.config);
    let clamped = request.deadline != original.deadline
        || request.top_k != original.top_k
        || request.work_budget != original.work_budget;
    // Batch on the *clamped* configuration: two clients may send
    // different deadlines yet land in the same wave once capped.
    let config_key = encode_request_config(&request);

    // Pin the index epoch the query will run on; reloads published after
    // this point do not affect it.
    let pinned = shared.pin_index();

    // Codes the database alphabet cannot represent never reach the
    // engines (`Sequence::from_codes` requires valid codes); answer
    // with the same typed rejection the in-process facade produces.
    let alphabet = pinned.db.alphabet();
    if let Some((position, &code)) = codes
        .iter()
        .enumerate()
        .find(|&(_, &code)| !alphabet.is_character(code))
    {
        let termination = Termination::Invalid(SearchError::InvalidCode { code, position });
        shared.metrics.termination_counter(&termination).inc();
        shared.trace.record(QueryTrace {
            id: 0,
            proto,
            engine: request.engine.label(),
            query_len: codes.len(),
            clamped,
            wave_size: 0,
            queue_wait_us: 0,
            engine_us: 0,
            hits: 0,
            termination: termination.label(),
        });
        return Submission::Invalid(DoneSummary {
            engine: request.engine,
            threshold: 0,
            delivered: 0,
            raw_hit_count: 0,
            termination,
            counters: EngineCounters::empty(request.engine),
        });
    }

    let (reply_tx, reply_rx) = mpsc::channel();
    shared.pending_count.fetch_add(1, Ordering::SeqCst);
    shared.metrics.queue_depth.add(1);
    // A poisoned queue only means another worker panicked while
    // holding it; the VecDeque itself is still structurally sound, so
    // serving continues rather than panicking every connection.
    shared
        .queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .push_back(Pending {
            config_key,
            request,
            codes,
            reply: reply_tx,
            proto,
            clamped,
            enqueued: Instant::now(),
            pinned,
            permit,
        });
    shared.queue_cv.notify_one();
    Submission::Enqueued(reply_rx)
}

/// A running search service bound to a TCP address.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the worker
    /// pool.  Call [`Server::serve`] to start accepting connections.
    pub fn bind(
        addr: impl ToSocketAddrs,
        db: IndexedDatabase,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let trace_capacity = config.trace_capacity;
        let fairness = Arc::new(FairnessGate::new(config.fairness));
        let conns = Arc::new(ConnRegistry::new(config.max_connections));
        let shared = Arc::new(Shared {
            index: IndexSlot::new(db),
            index_path: Mutex::new(None),
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            pending_count: AtomicUsize::new(0),
            busy_workers: AtomicUsize::new(0),
            metrics: Metrics::new(),
            trace: TraceLog::new(trace_capacity),
            ready: AtomicBool::new(true),
            live_workers: AtomicUsize::new(0),
            fairness,
            conns,
            draining: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            accept_closed: AtomicBool::new(false),
        });
        shared.metrics.index_loaded.set(1);
        shared.metrics.index_epoch.set(1);
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                shared.live_workers.fetch_add(1, Ordering::SeqCst);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Self {
            listener,
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The bound address (the resolved port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's metric registry (scraped by `GET /metrics`; readable
    /// in-process for tests and embedders).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The per-query trace ring (`GET /debug/last-queries`); a no-op
    /// stand-in when built without the `trace` feature.
    pub fn trace_log(&self) -> &TraceLog {
        &self.shared.trace
    }

    /// Mark the service ready (the default) or not.  While not ready,
    /// `GET /healthz` answers 503; search paths keep working — readiness
    /// is advisory, for load balancers and rolling restarts.
    pub fn set_ready(&self, ready: bool) {
        self.shared.ready.store(ready, Ordering::SeqCst);
        self.shared.metrics.index_loaded.set(i64::from(ready));
    }

    /// Remember where the index was loaded from; `POST /admin/reload`
    /// with no body path and SIGHUP reload from here.
    pub fn set_index_path(&self, path: impl Into<PathBuf>) {
        let mut slot = self
            .shared
            .index_path
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Some(path.into());
    }

    /// The epoch of the currently published index (1 at startup).
    pub fn index_epoch(&self) -> u64 {
        self.shared.index.epoch()
    }

    /// Hot-swap the index from `path`: fully validate the file
    /// (checksums, version), open it, publish it as a new epoch.
    /// In-flight queries finish on their pinned epoch; the old index
    /// deallocates when its last pin releases.  On error the serving
    /// epoch is untouched.
    pub fn reload(&self, path: &Path) -> Result<ReloadSummary, String> {
        reload::reload_index(&self.shared, path)
    }

    /// Whether a drain has been requested over HTTP (`POST
    /// /admin/drain`); a process watcher should complete it with
    /// [`Server::drain`] and exit.
    pub fn drain_requested(&self) -> bool {
        self.shared.drain_requested.load(Ordering::SeqCst)
    }

    /// Gracefully drain: flip readiness off (`/healthz` goes 503),
    /// refuse new queries with a typed `draining` rejection, wait for
    /// in-flight queries to finish (bounded by `hard_deadline`), then
    /// stop the workers and the accept loop.  Returns how long the drain
    /// took; the same value lands on the `alae_drain_seconds` gauge.
    ///
    /// The HTTP front keeps answering (`/metrics`, `/healthz`) so load
    /// balancers and final scrapes see the drained state.
    pub fn drain(&self, hard_deadline: Duration) -> Duration {
        let started = Instant::now();
        self.set_ready(false);
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared
            .trace
            .record_event("drain", "phase=start".to_string());
        while started.elapsed() < hard_deadline {
            if self.shared.pending_count.load(Ordering::SeqCst) == 0
                && self.shared.busy_workers.load(Ordering::SeqCst) == 0
            {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        self.stop_workers();
        self.close_accept_loop();
        let took = started.elapsed();
        self.shared.metrics.drain_seconds.set(took.as_secs_f64());
        self.shared.trace.record_event(
            "drain",
            format!(
                "phase=done took_us={} completed_in_flight={}",
                took.as_micros().min(u128::from(u64::MAX)) as u64,
                self.shared.pending_count.load(Ordering::SeqCst) == 0,
            ),
        );
        took
    }

    fn stop_workers(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        // Take the handles out of the lock, then join without holding it.
        let mut guard = self
            .workers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let handles = std::mem::take(&mut *guard);
        drop(guard);
        for worker in handles {
            let _ = worker.join();
        }
    }

    /// Tell [`Server::serve`] to return: set the flag, then poke the
    /// blocking `accept` with a throwaway local connection.
    fn close_accept_loop(&self) {
        self.shared.accept_closed.store(true, Ordering::SeqCst);
        if let Ok(addr) = self.listener.local_addr() {
            let _ = TcpStream::connect(addr);
        }
    }

    /// Bind an HTTP/1.1 front on `addr` sharing this server's index,
    /// admission queue and metrics.  Call [`http::HttpFront::serve`] (on
    /// its own thread) to start answering; see `docs/metrics.md` for the
    /// routes.
    pub fn http_front(&self, addr: impl ToSocketAddrs) -> io::Result<http::HttpFront> {
        http::HttpFront::bind(addr, Arc::clone(&self.shared))
    }

    /// Accept connections until [`Server::drain`] (or a listener error)
    /// stops the loop.  Each connection gets its own handler thread.
    /// While draining, newcomers get a typed `draining` rejection frame
    /// and are closed immediately.
    pub fn serve(&self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.accept_closed.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            if self.shared.draining.load(Ordering::SeqCst) {
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || {
                    let _ = refuse_draining(stream, &shared);
                });
                continue;
            }
            self.shared.metrics.tcp_connections.inc();
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || {
                // A broken connection is the client's problem, not ours.
                let _ = handle_connection(stream, &shared);
            });
        }
        Ok(())
    }

    /// Stop the worker pool.  Connections already streaming finish their
    /// in-flight waves; queued requests are drained and run first.
    pub fn shutdown(self) {
        self.stop_workers();
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

/// Answer a connection accepted mid-drain with one typed rejection
/// frame, then close.
fn refuse_draining(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    shared.metrics.rejected_draining.inc();
    let mut writer = BufWriter::new(stream);
    write_frame(
        &mut writer,
        FrameKind::Rejected,
        &encode_rejection(&Rejection {
            reason: RejectReason::Draining,
            retry_after: Some(Duration::from_secs(1)),
            message: "server is draining, not accepting new connections".into(),
        }),
    )?;
    writer.flush()
}

/// Whether a read error is the idle timeout (close quietly) rather than
/// a real failure.
fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let peer = stream.peer_addr().ok().map(|addr| addr.ip());

    // Register against the global ceiling; over it with every resident
    // busy, the newcomer gets a typed rejection and the door.
    let Some(token) = shared.conns.register(&stream, &shared.metrics) else {
        let mut writer = BufWriter::new(stream);
        write_frame(
            &mut writer,
            FrameKind::Rejected,
            &encode_rejection(&Rejection {
                reason: RejectReason::Capacity,
                retry_after: Some(Duration::from_millis(250)),
                message: "connection ceiling reached".into(),
            }),
        )?;
        return writer.flush();
    };

    stream.set_read_timeout(shared.config.idle_timeout).ok();

    #[cfg(feature = "fault-inject")]
    let fault = shared.fault_plan();

    let counting = CountingReader::new(
        stream.try_clone()?,
        Arc::clone(&shared.metrics.tcp_bytes_read),
    );
    #[cfg(feature = "fault-inject")]
    let mut reader = {
        let boxed: Box<dyn io::Read + Send> = match fault.and_then(|p| p.slow_read_bytes_per_sec) {
            Some(rate) => Box::new(ThrottledReader::new(counting, rate)),
            None => Box::new(counting),
        };
        BufReader::new(boxed)
    };
    #[cfg(not(feature = "fault-inject"))]
    let mut reader = BufReader::new(counting);

    let mut writer = BufWriter::new(CountingWriter::new(
        stream,
        Arc::clone(&shared.metrics.tcp_bytes_written),
    ));

    let mut frames_served: usize = 0;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()),
            // The idle timeout fired between requests: close quietly.
            Err(err) if is_timeout(&err) => return Ok(()),
            Err(err) => return Err(err),
        };
        frames_served += 1;

        #[cfg(feature = "fault-inject")]
        if let Some(plan) = fault {
            if plan.drop_conn_at_frame == Some(frames_served as u64) {
                // Simulated mid-stream disconnect: vanish without a frame.
                return Ok(());
            }
            if plan.io_stall_at_frame == Some(frames_served as u64) {
                // Simulated wedged I/O: stall past any reasonable client
                // read timeout, then continue normally.
                thread::sleep(Duration::from_secs(2));
            }
        }

        shared.conns.set_busy(token.id(), true);
        let result = serve_one_frame(frame, shared, peer, &mut writer);
        shared.conns.set_busy(token.id(), false);
        result?;

        if frames_served >= shared.config.max_requests_per_conn {
            // The per-connection budget is spent; the client reconnects.
            return Ok(());
        }
    }
}

/// Decode, admit and answer one request frame.
fn serve_one_frame(
    (kind, payload): (FrameKind, Vec<u8>),
    shared: &Shared,
    peer: Option<IpAddr>,
    writer: &mut impl Write,
) -> io::Result<()> {
    if kind != FrameKind::Request {
        shared.metrics.rejected_malformed.inc();
        write_frame(
            writer,
            FrameKind::Error,
            &encode_error("expected a request frame"),
        )?;
        return writer.flush();
    }
    let decoded = match decode_request(&payload) {
        Ok(decoded) => decoded,
        Err(err) => {
            shared.metrics.rejected_malformed.inc();
            write_frame(writer, FrameKind::Error, &encode_error(err.message()))?;
            return writer.flush();
        }
    };

    let reply_rx = match submit(shared, decoded.request, decoded.query_codes, "tcp", peer) {
        Submission::Rejected(rejection) => {
            write_frame(writer, FrameKind::Rejected, &encode_rejection(&rejection))?;
            return writer.flush();
        }
        Submission::Invalid(summary) => {
            write_frame(writer, FrameKind::Done, &encode_done(&summary))?;
            return writer.flush();
        }
        Submission::Enqueued(rx) => rx,
    };

    // Forward events until the wave finishes.  A write failure means
    // the client went away: stop forwarding (dropping the receiver
    // tells the worker's sink to stop) and give up on the connection.
    let mut result = Ok(());
    for event in reply_rx.iter() {
        let done = matches!(event, Event::Done(_));
        result = match event {
            Event::Hit(hit) => write_frame(writer, FrameKind::Hit, &encode_hit(&hit)),
            Event::Done(summary) => {
                match write_frame(writer, FrameKind::Done, &encode_done(&summary)) {
                    Ok(()) => writer.flush(),
                    Err(err) => Err(err),
                }
            }
        };
        if done || result.is_err() {
            break;
        }
    }
    result
}

/// Apply the server-side guardrail caps to a client request.
fn clamp_request(mut request: SearchRequest, config: &ServerConfig) -> SearchRequest {
    if let Some(cap) = config.max_deadline {
        request.deadline = Some(request.deadline.map_or(cap, |d| d.min(cap)));
    }
    if let Some(cap) = config.max_top_k {
        request.top_k = Some(request.top_k.map_or(cap, |k| k.min(cap)));
    }
    if let Some(cap) = config.max_work_budget {
        request.work_budget = Some(request.work_budget.map_or(cap, |b| b.min(cap)));
    }
    request
}

// ---------------------------------------------------------------------------
// Search workers
// ---------------------------------------------------------------------------

/// Decrements the live-worker count however the worker exits — normal
/// shutdown or a panic unwinding through `run_wave` — so `GET /healthz`
/// reports a dead pool instead of a healthy façade.
struct WorkerAlive<'a>(&'a Shared);

impl Drop for WorkerAlive<'_> {
    fn drop(&mut self) {
        self.0.live_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Decrements `busy_workers` however the wave exits (including a panic
/// unwinding through `run_wave`), so a crashed wave cannot wedge a
/// drain forever.
struct WaveBusy<'a>(&'a Shared);

impl Drop for WaveBusy<'_> {
    fn drop(&mut self) {
        self.0.busy_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(shared: &Shared) {
    let _alive = WorkerAlive(shared);
    loop {
        let Some(wave) = next_wave(shared) else {
            return;
        };
        // `busy_workers` was incremented inside `next_wave` while the
        // queue lock was still held; pair it with a drop guard here.
        let _busy = WaveBusy(shared);
        shared.pending_count.fetch_sub(wave.len(), Ordering::SeqCst);
        shared.metrics.queue_depth.add(-(wave.len() as i64));
        run_wave(shared, wave);
    }
}

/// Block until at least one request is queued, hold the wave open for
/// [`ServerConfig::batch_window`] so compatible stragglers can join, then
/// drain every request sharing the head request's configuration key
/// **and** index epoch (queries pinned to different epochs never share
/// a wave — that is what makes hot swaps invisible to in-flight work).
fn next_wave(shared: &Shared) -> Option<Vec<Pending>> {
    // Poisoning is recovered everywhere in this loop: the queue stays
    // structurally valid across a worker panic and service must continue.
    let mut queue = shared
        .queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    loop {
        if queue.is_empty() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            queue = shared
                .queue_cv
                .wait(queue)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            continue;
        }
        if !shared.config.batch_window.is_zero() && !shared.shutdown.load(Ordering::SeqCst) {
            // One bounded wait: lets a burst of concurrent clients coalesce
            // without adding latency when traffic is sparse.
            let (q, _) = shared
                .queue_cv
                .wait_timeout(queue, shared.config.batch_window)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            queue = q;
        }
        let Some(head) = queue.pop_front() else {
            // Emptied while we held the batch window open; wait again.
            continue;
        };
        let key = head.config_key.clone();
        let epoch = Arc::clone(&head.pinned);
        let mut wave = vec![head];
        let mut rest = VecDeque::with_capacity(queue.len());
        while let Some(pending) = queue.pop_front() {
            if pending.config_key == key && Arc::ptr_eq(&pending.pinned, &epoch) {
                wave.push(pending);
            } else {
                rest.push_back(pending);
            }
        }
        *queue = rest;
        // Mark the worker busy before the queue lock releases: the drain
        // loop must never observe "queue empty, nobody busy" while this
        // wave is in hand.
        shared.busy_workers.fetch_add(1, Ordering::SeqCst);
        return Some(wave);
    }
}

/// A [`HitSink`] forwarding each shaped hit to the connection handler the
/// moment the engine emits it.  A closed channel (client gone) stops the
/// stream without disturbing the rest of the wave.
struct ForwardingSink<'a> {
    reply: &'a mpsc::Sender<Event>,
    client_gone: bool,
}

impl HitSink for ForwardingSink<'_> {
    fn accept(&mut self, hit: SearchHit) -> SinkFlow {
        if self.reply.send(Event::Hit(hit)).is_err() {
            self.client_gone = true;
            return SinkFlow::Stop;
        }
        SinkFlow::Continue
    }
}

/// The single place a completed query is accounted: exactly one
/// termination counter, one latency observation, one trace record.
#[allow(clippy::too_many_arguments)]
fn finish_query(
    shared: &Shared,
    pending: &Pending,
    engine: EngineKind,
    wave_size: usize,
    queue_wait: Duration,
    engine_time: Duration,
    hits: usize,
    termination: &Termination,
) {
    shared.metrics.termination_counter(termination).inc();
    shared
        .metrics
        .latency_histogram(engine)
        .observe_duration(engine_time);
    shared.trace.record(QueryTrace {
        id: 0,
        proto: pending.proto,
        engine: engine.label(),
        query_len: pending.codes.len(),
        clamped: pending.clamped,
        wave_size,
        queue_wait_us: queue_wait.as_micros().min(u128::from(u64::MAX)) as u64,
        engine_us: engine_time.as_micros().min(u128::from(u64::MAX)) as u64,
        hits,
        termination: termination.label(),
    });
}

fn run_wave(shared: &Shared, wave: Vec<Pending>) {
    let request = wave[0].request;
    // Every member of the wave is pinned to the same epoch (next_wave
    // guarantees it); the wave runs on that index even if a reload
    // publishes a newer one mid-flight.
    let db = wave[0].pinned.db.clone();
    let searcher = Searcher::new(db.clone(), request);
    let alphabet = db.alphabet();
    let picked_up = Instant::now();
    let wave_size = wave.len();
    shared.metrics.wave_size.observe(wave_size as f64);
    for pending in &wave {
        shared
            .metrics
            .queue_wait_seconds
            .observe_duration(picked_up.duration_since(pending.enqueued));
    }

    if wave_size == 1 {
        // Stream hits as the engine shapes them.
        let Some(pending) = wave.into_iter().next() else {
            return;
        };
        let queue_wait = picked_up.duration_since(pending.enqueued);
        let query = Sequence::from_codes(alphabet, pending.codes.clone());
        let mut sink = ForwardingSink {
            reply: &pending.reply,
            client_gone: false,
        };
        let summary = searcher.search_into(&query, &mut sink);
        let engine_time = picked_up.elapsed();
        finish_query(
            shared,
            &pending,
            summary.engine,
            1,
            queue_wait,
            engine_time,
            summary.delivered,
            &summary.termination,
        );
        let _ = pending.reply.send(Event::Done(DoneSummary {
            engine: summary.engine,
            threshold: summary.threshold,
            delivered: summary.delivered as u64,
            raw_hit_count: summary.raw_hit_count as u64,
            termination: summary.termination,
            counters: summary.counters,
        }));
        return;
    }

    // A coalesced wave: one Searcher, one multi-threaded batch over the
    // shared index, then per-client delivery.
    let queries: Vec<Sequence> = wave
        .iter()
        .map(|p| Sequence::from_codes(alphabet, p.codes.clone()))
        .collect();
    let threads = wave_size.min(shared.config.workers.max(1) * 2);
    let responses = searcher.search_batch(&queries, threads);
    let engine_time = picked_up.elapsed();
    for (pending, response) in wave.into_iter().zip(responses) {
        let queue_wait = picked_up.duration_since(pending.enqueued);
        let delivered = response.hits.len() as u64;
        finish_query(
            shared,
            &pending,
            response.engine,
            wave_size,
            queue_wait,
            engine_time,
            response.hits.len(),
            &response.termination,
        );
        let mut client_gone = false;
        for hit in response.hits {
            if pending.reply.send(Event::Hit(hit)).is_err() {
                client_gone = true;
                break;
            }
        }
        if !client_gone {
            let _ = pending.reply.send(Event::Done(DoneSummary {
                engine: response.engine,
                threshold: response.threshold,
                delivered,
                raw_hit_count: response.raw_hit_count as u64,
                termination: response.termination,
                counters: response.counters,
            }));
        }
    }
}
