//! Per-peer fairness: a token bucket plus a concurrent-query cap per
//! client IP, enforced at admission.
//!
//! One greedy client used to be able to fill the whole admission queue
//! and monopolize the worker pool.  The gate charges every admission to
//! the peer's bucket (refilled continuously at
//! [`FairnessConfig::rate_per_sec`], capped at [`FairnessConfig::burst`])
//! and bounds how many of the peer's queries may be in flight at once.
//! A refusal is *typed*: the caller turns it into a
//! `Rejected::Fairness` frame on the TCP front or an HTTP 429 with a
//! `Retry-After` hint, so well-behaved clients know exactly how long to
//! back off.

use crate::metrics::Metrics;
use alae::wire::{RejectReason, Rejection};
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Knobs of the per-peer fairness gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessConfig {
    /// Tokens (admissions) a peer earns per second.
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest burst a quiet peer may spend at once.
    pub burst: f64,
    /// Queries one peer may have in flight concurrently.
    pub max_concurrent: usize,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        // Generous by default: a polite client never notices the gate;
        // a flooder hits it within a second.
        Self {
            rate_per_sec: 200.0,
            burst: 400.0,
            max_concurrent: 64,
        }
    }
}

/// Per-peer accounting: bucket level, refill bookkeeping, in-flight
/// queries.
#[derive(Debug)]
struct PeerState {
    tokens: f64,
    refilled: Instant,
    in_flight: usize,
    last_seen: Instant,
}

/// Entries beyond this trigger an opportunistic sweep of stale peers.
const SWEEP_THRESHOLD: usize = 1024;
/// A peer with no in-flight work and no traffic for this long is swept.
const STALE_AFTER: Duration = Duration::from_secs(300);

/// The admission gate.  Lives in an `Arc` so [`PeerPermit`]s can release
/// their slot from wherever they are dropped.
pub(crate) struct FairnessGate {
    config: FairnessConfig,
    peers: Mutex<HashMap<IpAddr, PeerState>>,
}

/// RAII lease on one per-peer concurrency slot; dropping it releases
/// the slot.
pub(crate) struct PeerPermit {
    gate: Arc<FairnessGate>,
    peer: IpAddr,
}

impl Drop for PeerPermit {
    fn drop(&mut self) {
        let mut peers = self
            .gate
            .peers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(state) = peers.get_mut(&self.peer) {
            state.in_flight = state.in_flight.saturating_sub(1);
        }
    }
}

impl std::fmt::Debug for PeerPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerPermit")
            .field("peer", &self.peer)
            .finish()
    }
}

impl FairnessGate {
    pub(crate) fn new(config: FairnessConfig) -> Self {
        Self {
            config,
            peers: Mutex::new(HashMap::new()),
        }
    }

    /// Charge one admission to `peer`.  `Ok` carries the concurrency
    /// lease to hold for the query's lifetime; `Err` carries the typed
    /// rejection (with a `Retry-After` hint) and increments the matching
    /// fairness metric.
    pub(crate) fn admit(
        self: &Arc<Self>,
        peer: IpAddr,
        metrics: &Metrics,
    ) -> Result<PeerPermit, Rejection> {
        let now = Instant::now();
        let mut peers = self
            .peers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if peers.len() > SWEEP_THRESHOLD {
            peers.retain(|_, state| {
                state.in_flight > 0 || now.duration_since(state.last_seen) < STALE_AFTER
            });
        }
        let state = peers.entry(peer).or_insert_with(|| PeerState {
            tokens: self.config.burst,
            refilled: now,
            in_flight: 0,
            last_seen: now,
        });
        state.last_seen = now;
        let elapsed = now.duration_since(state.refilled).as_secs_f64();
        state.tokens = (state.tokens + elapsed * self.config.rate_per_sec).min(self.config.burst);
        state.refilled = now;

        if state.tokens < 1.0 {
            metrics.fairness_rejection_counter("rate").inc();
            let wait = if self.config.rate_per_sec > 0.0 {
                (1.0 - state.tokens) / self.config.rate_per_sec
            } else {
                1.0
            };
            return Err(Rejection {
                reason: RejectReason::Fairness,
                retry_after: Some(Duration::from_secs_f64(wait.clamp(0.001, 60.0))),
                message: format!("rate limit exceeded for {peer}"),
            });
        }
        if state.in_flight >= self.config.max_concurrent {
            metrics.fairness_rejection_counter("concurrency").inc();
            return Err(Rejection {
                reason: RejectReason::Fairness,
                retry_after: Some(Duration::from_millis(100)),
                message: format!("too many concurrent queries from {peer}"),
            });
        }
        state.tokens -= 1.0;
        state.in_flight += 1;
        drop(peers);
        Ok(PeerPermit {
            gate: Arc::clone(self),
            peer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer() -> IpAddr {
        IpAddr::from([127, 0, 0, 1])
    }

    #[test]
    fn bucket_empties_then_refills() {
        let gate = Arc::new(FairnessGate::new(FairnessConfig {
            rate_per_sec: 1000.0,
            burst: 2.0,
            max_concurrent: 16,
        }));
        let metrics = Metrics::new();
        let a = gate.admit(peer(), &metrics).expect("first admission");
        let b = gate.admit(peer(), &metrics).expect("second admission");
        let rejected = gate.admit(peer(), &metrics).expect_err("bucket empty");
        assert_eq!(rejected.reason, alae::wire::RejectReason::Fairness);
        assert!(rejected.retry_after.is_some());
        assert_eq!(metrics.fairness_rejections[0].get(), 1);
        drop(a);
        drop(b);
        // 1000 tokens/s: a couple of milliseconds refills a whole token.
        std::thread::sleep(Duration::from_millis(5));
        assert!(gate.admit(peer(), &metrics).is_ok());
    }

    #[test]
    fn concurrency_cap_is_released_by_permit_drop() {
        let gate = Arc::new(FairnessGate::new(FairnessConfig {
            rate_per_sec: 1e6,
            burst: 1e6,
            max_concurrent: 2,
        }));
        let metrics = Metrics::new();
        let a = gate.admit(peer(), &metrics).expect("slot 1");
        let _b = gate.admit(peer(), &metrics).expect("slot 2");
        let rejected = gate.admit(peer(), &metrics).expect_err("cap reached");
        assert!(rejected.message.contains("concurrent"));
        assert_eq!(metrics.fairness_rejections[1].get(), 1);
        drop(a);
        assert!(gate.admit(peer(), &metrics).is_ok());
    }

    #[test]
    fn peers_are_isolated() {
        let gate = Arc::new(FairnessGate::new(FairnessConfig {
            rate_per_sec: 0.0001,
            burst: 1.0,
            max_concurrent: 16,
        }));
        let metrics = Metrics::new();
        let flooder: IpAddr = IpAddr::from([10, 0, 0, 1]);
        let polite: IpAddr = IpAddr::from([10, 0, 0, 2]);
        let _p = gate.admit(flooder, &metrics).expect("first is free");
        assert!(gate.admit(flooder, &metrics).is_err());
        // The other peer's bucket is untouched.
        assert!(gate.admit(polite, &metrics).is_ok());
    }
}
