//! A hand-rolled HTTP/1.1 front for the search service — `std::net`
//! only, same no-dependency discipline as the wire protocol.
//!
//! Routes (the full contract lives in `docs/metrics.md`):
//!
//! * `GET /metrics` — the [`crate::metrics::Metrics`] registry in
//!   Prometheus text exposition format.
//! * `GET /healthz` — 200 when the index is loaded and the worker pool
//!   is alive, 503 otherwise.
//! * `GET /debug/last-queries` — the [`crate::trace`] ring, one line per
//!   query (reports tracing disabled when built without the feature).
//! * `POST /search` — a minimal JSON body mapped onto the existing
//!   [`alae::search::SearchRequest`] clamping path; the query runs
//!   through the **same** admission queue and wave coalescing as TCP
//!   frame requests, so the hits are identical by construction.
//! * `POST /admin/reload` — hot-swap the index (optional JSON body
//!   `{"path": "..."}`, else the path the server was started with);
//!   the file is fully validated before the epoch flips.
//! * `POST /admin/drain` — request a graceful drain: readiness flips
//!   off, new queries are refused with a typed `draining` rejection, and
//!   the process watcher completes the drain (see `docs/operations.md`).
//!
//! Fairness rejections surface as HTTP 429 with a `Retry-After` header.
//! When [`crate::ServerConfig::trust_forwarded_for`] is set, the first
//! address in `X-Forwarded-For` is charged instead of the socket peer.
//!
//! The parser accepts the subset of HTTP/1.1 a scraper or `curl` emits:
//! one request line, headers, an optional `Content-Length` body,
//! keep-alive by default.  Anything outside that subset gets a `400`
//! and the connection closes; the serving threads are untouched.

use crate::{submit, Event, Shared, Submission};
use alae::bioseq::ScoringScheme;
use alae::search::{EngineKind, SearchRequest};
use alae::wire::{CountingReader, CountingWriter, DoneSummary, RejectReason, Rejection};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Longest accepted request line or header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Idle keep-alive connections are dropped after this long.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// The HTTP/1.1 front bound to its own listener, sharing the server's
/// index, admission queue, metrics and trace ring.  Obtain one with
/// [`crate::Server::http_front`]; run [`HttpFront::serve`] on a thread.
pub struct HttpFront {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl HttpFront {
    pub(crate) fn bind(addr: impl ToSocketAddrs, shared: Arc<Shared>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self { listener, shared })
    }

    /// The bound address (the resolved port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept connections until the listener fails; each connection gets
    /// its own handler thread (scrapers hold connections open).
    pub fn serve(&self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            self.shared.metrics.http_connections.inc();
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || {
                // A broken connection is the client's problem, not ours.
                let _ = handle_http_connection(stream, &shared);
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

struct Response {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    /// Rendered as a `Retry-After` header (whole seconds) when present.
    retry_after: Option<u64>,
}

impl Response {
    fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
        }
    }

    fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    fn bad_request(message: &str) -> Self {
        let mut body = String::new();
        push_json_object(&mut body, |obj| {
            obj.string("error", message);
        });
        Self::json(400, body)
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn handle_http_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let peer = stream.peer_addr().ok().map(|addr| addr.ip());
    let mut reader = BufReader::new(CountingReader::new(
        stream.try_clone()?,
        Arc::clone(&shared.metrics.http_bytes_read),
    ));
    let mut writer = BufWriter::new(CountingWriter::new(
        stream,
        Arc::clone(&shared.metrics.http_bytes_written),
    ));

    loop {
        // Re-arm the idle timeout before *every* request, not just the
        // first: a keep-alive connection's clock must restart per
        // request, or a scraper idling between scrapes inherits however
        // much of the window the previous request left over.
        reader
            .get_ref()
            .get_ref()
            .set_read_timeout(Some(READ_TIMEOUT))
            .ok();
        let request = match read_request(&mut reader)? {
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Malformed(message) => {
                // Framing is lost after a malformed request; answer 400
                // and close this connection (the listener and the search
                // workers keep running).
                shared.metrics.rejected_malformed.inc();
                write_response(&mut writer, shared, &Response::bad_request(&message), false)?;
                return Ok(());
            }
            ReadOutcome::Request(request) => request,
        };

        let response = route(shared, &request, peer);
        write_response(&mut writer, shared, &response, request.keep_alive)?;
        if !request.keep_alive {
            return Ok(());
        }
    }
}

struct HttpRequest {
    method: String,
    path: String,
    keep_alive: bool,
    body: Vec<u8>,
    /// First address in `X-Forwarded-For`, if the header parsed as an
    /// IP.  Only consulted when `trust_forwarded_for` is configured.
    forwarded_for: Option<IpAddr>,
}

enum ReadOutcome {
    /// The peer closed the connection between requests.
    Closed,
    /// The bytes on the wire are not a request this front accepts.
    Malformed(String),
    Request(HttpRequest),
}

fn read_request(reader: &mut impl BufRead) -> io::Result<ReadOutcome> {
    let request_line = match read_line(reader)? {
        None => return Ok(ReadOutcome::Closed),
        Some(line) if line.is_empty() => return Ok(ReadOutcome::Closed),
        Some(line) => line,
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Malformed("malformed request line".into()));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed("malformed request line".into()));
    }
    // Ignore any query string; routes here take none.
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Ok(ReadOutcome::Malformed(
            "request target must be a path".into(),
        ));
    }

    let mut content_length: usize = 0;
    let mut keep_alive = true;
    let mut forwarded_for = None;
    for _ in 0..MAX_HEADERS {
        let line = match read_line(reader)? {
            None => {
                return Ok(ReadOutcome::Malformed(
                    "connection closed mid-headers".into(),
                ))
            }
            Some(line) => line,
        };
        if line.is_empty() {
            let body = if content_length > 0 {
                let mut body = vec![0u8; content_length];
                reader.read_exact(&mut body)?;
                body
            } else {
                Vec::new()
            };
            return Ok(ReadOutcome::Request(HttpRequest {
                method: method.to_string(),
                path,
                keep_alive,
                body,
                forwarded_for,
            }));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(ReadOutcome::Malformed("malformed header line".into()));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let Ok(length) = value.parse::<usize>() else {
                    return Ok(ReadOutcome::Malformed("bad content-length".into()));
                };
                if length > MAX_BODY_BYTES {
                    return Ok(ReadOutcome::Malformed("body too large".into()));
                }
                content_length = length;
            }
            "connection" if value.eq_ignore_ascii_case("close") => keep_alive = false,
            "x-forwarded-for" => {
                // Only the first (client-most) address matters; a value
                // that is not an IP is ignored rather than rejected.
                forwarded_for = value
                    .split(',')
                    .next()
                    .and_then(|first| first.trim().parse::<IpAddr>().ok());
            }
            "transfer-encoding" => {
                return Ok(ReadOutcome::Malformed(
                    "chunked bodies are not supported; send content-length".into(),
                ));
            }
            _ => {}
        }
    }
    Ok(ReadOutcome::Malformed("too many headers".into()))
}

/// One header/request line without its terminator; `None` on clean EOF.
fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte)? {
            0 => {
                if buf.is_empty() {
                    return Ok(None);
                }
                break;
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "header line too long",
                    ));
                }
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Some(line)),
        Err(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "header line is not UTF-8",
        )),
    }
}

fn write_response(
    writer: &mut impl Write,
    shared: &Shared,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    shared.metrics.http_response_counter(response.status).inc();
    let mut head = String::with_capacity(128);
    let _ = write!(
        head,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(seconds) = response.retry_after {
        let _ = write!(head, "Retry-After: {seconds}\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

// ---------------------------------------------------------------------------
// Routes
// ---------------------------------------------------------------------------

fn route(shared: &Shared, request: &HttpRequest, peer: Option<IpAddr>) -> Response {
    // Fairness charges the socket peer unless the operator explicitly
    // trusts a fronting proxy's X-Forwarded-For.
    let effective_peer = if shared.config.trust_forwarded_for {
        request.forwarded_for.or(peer)
    } else {
        peer
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: shared.metrics.render().into_bytes(),
            retry_after: None,
        },
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/debug/last-queries") => last_queries(shared),
        ("POST", "/search") => search(shared, &request.body, effective_peer),
        ("POST", "/admin/reload") => admin_reload(shared, &request.body),
        ("POST", "/admin/drain") => admin_drain(shared),
        (
            "GET" | "HEAD" | "POST" | "PUT" | "DELETE",
            "/metrics"
            | "/healthz"
            | "/debug/last-queries"
            | "/search"
            | "/admin/reload"
            | "/admin/drain",
        ) => Response::text(405, "method not allowed\n"),
        _ => Response::text(404, "not found\n"),
    }
}

/// `POST /admin/reload`: hot-swap the index.  The body may name a path
/// (`{"path": "..."}`); with no body the server reloads the path it was
/// started with.  A rejected file leaves the serving epoch untouched.
fn admin_reload(shared: &Shared, body: &[u8]) -> Response {
    let path: PathBuf = if body.is_empty() {
        let configured = shared
            .index_path
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        match configured {
            Some(path) => path,
            None => {
                return Response::bad_request(
                    "no index path configured; pass {\"path\": \"...\"} in the body",
                )
            }
        }
    } else {
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(_) => return Response::bad_request("body is not UTF-8"),
        };
        let fields = match parse_flat_json(text) {
            Ok(fields) => fields,
            Err(message) => return Response::bad_request(&message),
        };
        match fields.get("path") {
            Some(Json::Str(path)) if !path.is_empty() => PathBuf::from(path),
            _ => return Response::bad_request("body must carry a non-empty string \"path\""),
        }
    };

    match crate::reload::reload_index(shared, &path) {
        Ok(summary) => {
            let mut body = String::new();
            push_json_object(&mut body, |obj| {
                obj.string("status", "reloaded");
                obj.number("epoch", summary.epoch as f64);
                obj.number("records", summary.records as f64);
                obj.number("text_len", summary.text_len as f64);
                obj.number("took_ms", summary.took.as_secs_f64() * 1000.0);
            });
            Response::json(200, body)
        }
        Err(message) => Response::bad_request(&message),
    }
}

/// `POST /admin/drain`: flip the service into draining mode.  New
/// queries are refused immediately; the process watcher (`alae-serve`)
/// observes `drain_requested` and completes the drain + exit.  Embedders
/// without a watcher call [`crate::Server::drain`] themselves.
fn admin_drain(shared: &Shared) -> Response {
    shared.ready.store(false, Ordering::SeqCst);
    shared.metrics.index_loaded.set(0);
    shared.draining.store(true, Ordering::SeqCst);
    shared.drain_requested.store(true, Ordering::SeqCst);
    shared
        .trace
        .record_event("drain", "phase=requested via=http".to_string());
    let mut body = String::new();
    push_json_object(&mut body, |obj| {
        obj.string("status", "draining");
        obj.bool("draining", true);
    });
    Response::json(200, body)
}

fn healthz(shared: &Shared) -> Response {
    let index_loaded = shared.ready.load(Ordering::SeqCst);
    let live_workers = shared.live_workers.load(Ordering::SeqCst);
    let draining = shared.draining.load(Ordering::SeqCst);
    let healthy = index_loaded && live_workers > 0 && !draining;
    let mut body = String::new();
    push_json_object(&mut body, |obj| {
        obj.string(
            "status",
            if healthy {
                "ok"
            } else if draining {
                "draining"
            } else {
                "unavailable"
            },
        );
        obj.bool("index_loaded", index_loaded);
        obj.number("live_workers", live_workers as f64);
        obj.bool("draining", draining);
        obj.number("index_epoch", shared.index.epoch() as f64);
    });
    Response::json(if healthy { 200 } else { 503 }, body)
}

fn last_queries(shared: &Shared) -> Response {
    if !shared.trace.enabled() {
        return Response::text(
            200,
            "# tracing disabled: alae-server built without the `trace` feature\n",
        );
    }
    let mut body = String::new();
    for event in shared.trace.events_snapshot() {
        body.push_str(&event.render_line());
        body.push('\n');
    }
    for record in shared.trace.snapshot() {
        body.push_str(&record.render_line());
        body.push('\n');
    }
    if body.is_empty() {
        body.push_str("# no queries recorded yet\n");
    }
    Response::text(200, body)
}

fn search(shared: &Shared, body: &[u8], peer: Option<IpAddr>) -> Response {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            shared.metrics.rejected_malformed.inc();
            return Response::bad_request("body is not UTF-8");
        }
    };
    let request = match parse_search_body(text, shared) {
        Ok(request) => request,
        Err(message) => {
            shared.metrics.rejected_malformed.inc();
            return Response::bad_request(&message);
        }
    };

    match submit(shared, request.request, request.codes, "http", peer) {
        Submission::Rejected(rejection) => rejection_response(&rejection),
        Submission::Invalid(summary) => render_search_response(&summary, &[]),
        Submission::Enqueued(rx) => {
            let mut hits = Vec::new();
            for event in rx.iter() {
                match event {
                    Event::Hit(hit) => hits.push(hit),
                    Event::Done(summary) => return render_search_response(&summary, &hits),
                }
            }
            // The worker side hung up without a done summary.
            let mut body = String::new();
            push_json_object(&mut body, |obj| {
                obj.string("error", "search worker failed");
            });
            Response::json(500, body)
        }
    }
}

/// Map a typed admission rejection onto HTTP: fairness refusals are 429
/// (the client's rate, not the server's state), capacity and draining
/// are 503; every one carries the `Retry-After` hint when there is one.
fn rejection_response(rejection: &Rejection) -> Response {
    let status = match rejection.reason {
        RejectReason::Fairness => 429,
        RejectReason::Capacity | RejectReason::Draining => 503,
    };
    let mut body = String::new();
    push_json_object(&mut body, |obj| {
        obj.string("error", &rejection.message);
        obj.string("reason", rejection.reason.label());
        match rejection.retry_after {
            Some(after) => obj.number("retry_after_ms", after.as_millis() as f64),
            None => obj.null("retry_after_ms"),
        }
    });
    let mut response = Response::json(status, body);
    response.retry_after = rejection
        .retry_after
        .map(|after| after.as_secs_f64().ceil().max(1.0) as u64);
    response
}

/// A parsed `POST /search` body: the facade request plus encoded codes.
struct ParsedSearch {
    request: SearchRequest,
    codes: Vec<u8>,
}

fn parse_search_body(text: &str, shared: &Shared) -> Result<ParsedSearch, String> {
    let fields = parse_flat_json(text)?;

    let query = match fields.get("query") {
        Some(Json::Str(query)) if !query.is_empty() => query,
        Some(Json::Str(_)) => return Err("\"query\" must not be empty".into()),
        Some(_) => return Err("\"query\" must be a string".into()),
        None => return Err("missing required field \"query\"".into()),
    };
    // Encode against the currently published epoch; `submit` re-pins and
    // re-validates, so a reload between here and admission is still safe
    // (the alphabet is a property of the database format, not the epoch).
    let pinned = shared.pin_index();
    let codes = pinned
        .db
        .alphabet()
        .encode(query.as_bytes())
        .map_err(|err| format!("query does not fit the database alphabet: {err}"))?;

    let threshold = optional_integer(&fields, "threshold")?;
    let evalue = optional_number(&fields, "evalue")?;
    let mut request = match (threshold, evalue) {
        (Some(_), Some(_)) => {
            return Err("give either \"threshold\" or \"evalue\", not both".into())
        }
        (Some(threshold), None) => {
            if threshold <= 0 {
                return Err("\"threshold\" must be positive".into());
            }
            SearchRequest::with_threshold(ScoringScheme::DEFAULT, threshold)
        }
        (None, Some(evalue)) => {
            if !evalue.is_finite() || evalue <= 0.0 {
                return Err("\"evalue\" must be positive".into());
            }
            SearchRequest::with_evalue(ScoringScheme::DEFAULT, evalue)
        }
        (None, None) => return Err("missing \"threshold\" or \"evalue\"".into()),
    };

    if let Some(Json::Str(label)) = fields.get("engine") {
        match EngineKind::from_label(label) {
            Some(engine) => request.engine = engine,
            None => return Err(format!("unknown engine \"{label}\"")),
        }
    } else if fields.contains_key("engine") {
        return Err("\"engine\" must be a string".into());
    }
    if let Some(top_k) = optional_integer(&fields, "top_k")? {
        if top_k < 0 {
            return Err("\"top_k\" must be non-negative".into());
        }
        request.top_k = Some(top_k as usize);
    }
    if let Some(deadline_ms) = optional_integer(&fields, "deadline_ms")? {
        if deadline_ms < 0 {
            return Err("\"deadline_ms\" must be non-negative".into());
        }
        request.deadline = Some(Duration::from_millis(deadline_ms as u64));
    }
    if let Some(work_budget) = optional_integer(&fields, "work_budget")? {
        if work_budget < 0 {
            return Err("\"work_budget\" must be non-negative".into());
        }
        request.work_budget = Some(work_budget as u64);
    }

    Ok(ParsedSearch { request, codes })
}

fn optional_number(fields: &HashMap<String, Json>, key: &str) -> Result<Option<f64>, String> {
    match fields.get(key) {
        None => Ok(None),
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(format!("\"{key}\" must be a number")),
    }
}

fn optional_integer(fields: &HashMap<String, Json>, key: &str) -> Result<Option<i64>, String> {
    match optional_number(fields, key)? {
        None => Ok(None),
        Some(n) if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&n) => {
            Ok(Some(n as i64))
        }
        Some(_) => Err(format!("\"{key}\" must be an integer")),
    }
}

fn render_search_response(summary: &DoneSummary, hits: &[alae::search::SearchHit]) -> Response {
    let mut body = String::with_capacity(256 + hits.len() * 128);
    push_json_object(&mut body, |obj| {
        obj.string("engine", summary.engine.label());
        obj.number("threshold", summary.threshold as f64);
        obj.string("termination", summary.termination.label());
        obj.number("delivered", summary.delivered as f64);
        obj.number("raw_hit_count", summary.raw_hit_count as f64);
        obj.raw("hits", |out| {
            out.push('[');
            for (i, hit) in hits.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_object(out, |h| {
                    h.number("record", hit.record as f64);
                    h.string("name", &hit.name);
                    h.number("record_end", hit.record_end as f64);
                    h.number("query_end", hit.query_end as f64);
                    h.number("text_end", hit.text_end as f64);
                    h.number("score", hit.score as f64);
                    match hit.evalue {
                        Some(evalue) => h.number("evalue", evalue),
                        None => h.null("evalue"),
                    }
                });
            }
            out.push(']');
        });
    });
    Response::json(200, body)
}

// ---------------------------------------------------------------------------
// Minimal JSON (flat objects, string/number/bool/null values)
// ---------------------------------------------------------------------------

/// The value subset the `POST /search` body accepts.  Nested objects and
/// arrays are rejected — the contract is deliberately flat (see
/// `docs/metrics.md`).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

/// Parse a flat JSON object (`{"key": value, ...}`) into a map.
fn parse_flat_json(text: &str) -> Result<HashMap<String, Json>, String> {
    let mut chars = text.char_indices().peekable();
    skip_ws(&mut chars);
    if chars.next().map(|(_, c)| c) != Some('{') {
        return Err("body must be a JSON object".into());
    }
    let mut fields = HashMap::new();
    skip_ws(&mut chars);
    if chars.peek().map(|&(_, c)| c) == Some('}') {
        chars.next();
        skip_ws(&mut chars);
        return finish(chars, fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next().map(|(_, c)| c) != Some(':') {
            return Err(format!("expected ':' after key \"{key}\""));
        }
        skip_ws(&mut chars);
        let value = parse_value(&mut chars)?;
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next().map(|(_, c)| c) {
            Some(',') => continue,
            Some('}') => {
                skip_ws(&mut chars);
                return finish(chars, fields);
            }
            _ => return Err("expected ',' or '}' after a value".into()),
        }
    }
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn finish(
    mut chars: Chars<'_>,
    fields: HashMap<String, Json>,
) -> Result<HashMap<String, Json>, String> {
    match chars.next() {
        None => Ok(fields),
        Some(_) => Err("trailing data after the JSON object".into()),
    }
}

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some(&(_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_value(chars: &mut Chars<'_>) -> Result<Json, String> {
    match chars.peek().map(|&(_, c)| c) {
        Some('"') => Ok(Json::Str(parse_string(chars)?)),
        Some('t') => expect_literal(chars, "true", Json::Bool(true)),
        Some('f') => expect_literal(chars, "false", Json::Bool(false)),
        Some('n') => expect_literal(chars, "null", Json::Null),
        Some(c) if c == '-' || c.is_ascii_digit() => parse_number(chars),
        Some('{') | Some('[') => Err("nested objects/arrays are not accepted".into()),
        _ => Err("expected a JSON value".into()),
    }
}

fn expect_literal(chars: &mut Chars<'_>, literal: &str, value: Json) -> Result<Json, String> {
    for expected in literal.chars() {
        if chars.next().map(|(_, c)| c) != Some(expected) {
            return Err(format!("expected literal `{literal}`"));
        }
    }
    Ok(value)
}

fn parse_number(chars: &mut Chars<'_>) -> Result<Json, String> {
    let mut text = String::new();
    while let Some(&(_, c)) = chars.peek() {
        if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
            text.push(c);
            chars.next();
        } else {
            break;
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}`"))
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    if chars.next().map(|(_, c)| c) != Some('"') {
        return Err("expected a string".into());
    }
    let mut out = String::new();
    loop {
        let Some((_, c)) = chars.next() else {
            return Err("unterminated string".into());
        };
        match c {
            '"' => return Ok(out),
            '\\' => {
                let Some((_, escape)) = chars.next() else {
                    return Err("unterminated escape".into());
                };
                match escape {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, digit)) = chars.next() else {
                                return Err("truncated \\u escape".into());
                            };
                            let Some(value) = digit.to_digit(16) else {
                                return Err("bad \\u escape".into());
                            };
                            code = code * 16 + value;
                        }
                        match char::from_u32(code) {
                            Some(decoded) => out.push(decoded),
                            None => return Err("surrogate \\u escapes are not accepted".into()),
                        }
                    }
                    other => return Err(format!("unknown escape `\\{other}`")),
                }
            }
            _ => out.push(c),
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON writer
// ---------------------------------------------------------------------------

/// Field-appender handed to the [`push_json_object`] closure.
struct JsonObject<'a> {
    out: &'a mut String,
    first: bool,
}

impl JsonObject<'_> {
    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_json_string(self.out, key);
        self.out.push(':');
    }

    fn string(&mut self, key: &str, value: &str) {
        self.key(key);
        push_json_string(self.out, value);
    }

    fn number(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
    }

    fn bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
    }

    fn null(&mut self, key: &str) {
        self.key(key);
        self.out.push_str("null");
    }

    fn raw(&mut self, key: &str, fill: impl FnOnce(&mut String)) {
        self.key(key);
        fill(self.out);
    }
}

fn push_json_object(out: &mut String, fill: impl FnOnce(&mut JsonObject<'_>)) {
    out.push('{');
    let mut obj = JsonObject { out, first: true };
    fill(&mut obj);
    out.push('}');
}

fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_flat_search_body() {
        let fields = parse_flat_json(
            r#"{ "query": "ACGT", "engine": "alae", "threshold": 12, "top_k": 5, "stream": false, "note": null }"#,
        )
        .unwrap();
        assert_eq!(fields.get("query"), Some(&Json::Str("ACGT".into())));
        assert_eq!(fields.get("threshold"), Some(&Json::Num(12.0)));
        assert_eq!(fields.get("top_k"), Some(&Json::Num(5.0)));
        assert_eq!(fields.get("stream"), Some(&Json::Bool(false)));
        assert_eq!(fields.get("note"), Some(&Json::Null));
    }

    #[test]
    fn rejects_nested_and_trailing_junk() {
        assert!(parse_flat_json(r#"{"a": {"b": 1}}"#).is_err());
        assert!(parse_flat_json(r#"{"a": [1]}"#).is_err());
        assert!(parse_flat_json(r#"{"a": 1} extra"#).is_err());
        assert!(parse_flat_json("not json").is_err());
        assert!(parse_flat_json(r#"{"a": }"#).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let fields = parse_flat_json(r#"{"s": "a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(fields.get("s"), Some(&Json::Str("a\"b\\c\ndA".into())));
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_flat_json("{}").unwrap().is_empty());
        assert!(parse_flat_json("  { }  ").unwrap().is_empty());
    }
}
