//! Per-query trace records (feature `trace`, on by default).
//!
//! Every query that reaches the admission queue leaves one
//! [`QueryTrace`] describing its path through the pipeline — admission →
//! clamp → wave → engine → sink — in a fixed-capacity ring buffer.  The
//! newest records are dumpable over HTTP (`GET /debug/last-queries`) and
//! appendable to a file via `alae-serve --trace-log`.
//!
//! Building with `--no-default-features` compiles the no-op stub below:
//! the serving path calls the same API, records vanish, and the debug
//! endpoint reports tracing as disabled.

use std::fmt::Write as _;

/// Default number of queries the ring buffer retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 64;

/// One query's path through the server, admission to sink.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Monotone id assigned at record time (0 when tracing is disabled).
    pub id: u64,
    /// Which front admitted the query: `"tcp"` or `"http"`.
    pub proto: &'static str,
    /// Engine label (`EngineKind::label`).
    pub engine: &'static str,
    /// Query length in residues, after decoding.
    pub query_len: usize,
    /// Whether server-side clamping tightened any guardrail field.
    pub clamped: bool,
    /// Size of the coalesced wave this query ran in (1 = alone).
    pub wave_size: usize,
    /// Microseconds spent in the admission queue before wave pickup.
    pub queue_wait_us: u64,
    /// Microseconds of engine wall-clock, wave pickup to termination.
    pub engine_us: u64,
    /// Hits delivered to the sink.
    pub hits: usize,
    /// Termination label (`Termination::label`).
    pub termination: &'static str,
}

/// One server lifecycle event (reload, drain, eviction, signal) — the
/// control-plane counterpart of [`QueryTrace`], kept in its own small
/// ring so a query flood cannot wash recent operational history away.
#[derive(Debug, Clone)]
pub struct ServerEvent {
    /// Monotone id sharing the query-trace sequence (0 when disabled).
    pub id: u64,
    /// Stable event kind: `reload`, `drain`, `evict`, `signal`, ….
    pub kind: &'static str,
    /// Free-form detail (path, epoch, peer, outcome).
    pub detail: String,
}

impl ServerEvent {
    /// One-line rendering used by `/debug/last-queries` and the
    /// `--trace-log` file.
    pub fn render_line(&self) -> String {
        let mut line = String::with_capacity(64 + self.detail.len());
        let _ = write!(
            line,
            "event id={} kind={} {}",
            self.id, self.kind, self.detail
        );
        line
    }
}

impl QueryTrace {
    /// One-line rendering used by both `/debug/last-queries` and the
    /// `--trace-log` file (stable field order, `key=value` pairs).
    pub fn render_line(&self) -> String {
        let mut line = String::with_capacity(128);
        let _ = write!(
            line,
            "query id={} proto={} engine={} len={} clamped={} wave={} queue_wait_us={} engine_us={} hits={} termination={}",
            self.id,
            self.proto,
            self.engine,
            self.query_len,
            self.clamped,
            self.wave_size,
            self.queue_wait_us,
            self.engine_us,
            self.hits,
            self.termination,
        );
        line
    }
}

/// Server lifecycle events retained alongside the query ring.
pub const EVENT_RING_CAPACITY: usize = 32;

#[cfg(feature = "trace")]
mod enabled {
    use super::{QueryTrace, ServerEvent, EVENT_RING_CAPACITY};
    use std::collections::VecDeque;
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// Fixed-capacity ring of the most recent [`QueryTrace`] records,
    /// with an optional line-per-query sink (`alae-serve --trace-log`).
    pub struct TraceLog {
        capacity: usize,
        next_id: AtomicU64,
        ring: Mutex<VecDeque<QueryTrace>>,
        events: Mutex<VecDeque<ServerEvent>>,
        sink: Mutex<Option<Box<dyn Write + Send>>>,
    }

    impl std::fmt::Debug for TraceLog {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("TraceLog")
                .field("capacity", &self.capacity)
                .finish_non_exhaustive()
        }
    }

    impl TraceLog {
        /// A ring retaining the last `capacity` queries (at least 1).
        pub fn new(capacity: usize) -> Self {
            let capacity = capacity.max(1);
            Self {
                capacity,
                next_id: AtomicU64::new(1),
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
                events: Mutex::new(VecDeque::with_capacity(EVENT_RING_CAPACITY)),
                sink: Mutex::new(None),
            }
        }

        /// Whether this build records traces.
        pub fn enabled(&self) -> bool {
            true
        }

        /// Mirror every record as one [`QueryTrace::render_line`] line to
        /// `sink` (pass `None` to stop mirroring).
        pub fn set_sink(&self, sink: Option<Box<dyn Write + Send>>) {
            let mut slot = self
                .sink
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *slot = sink;
        }

        /// Record one query, assigning and returning its id.
        pub fn record(&self, mut trace: QueryTrace) -> u64 {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            trace.id = id;
            {
                let mut sink = self
                    .sink
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                if let Some(out) = sink.as_mut() {
                    // Formatted writes are the one I/O the lock-discipline
                    // lint allows under a guard; a full trace line is one
                    // short buffered write.
                    let _ = writeln!(out, "{}", trace.render_line());
                    let _ = out.flush();
                }
            }
            let mut ring = self
                .ring
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(trace);
            id
        }

        /// The retained records, oldest first.
        pub fn snapshot(&self) -> Vec<QueryTrace> {
            let ring = self
                .ring
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            ring.iter().cloned().collect()
        }

        /// Record one server lifecycle event (reload, drain, eviction,
        /// signal), assigning and returning its id.
        pub fn record_event(&self, kind: &'static str, detail: impl Into<String>) -> u64 {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let event = ServerEvent {
                id,
                kind,
                detail: detail.into(),
            };
            {
                let mut sink = self
                    .sink
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                if let Some(out) = sink.as_mut() {
                    let _ = writeln!(out, "{}", event.render_line());
                    let _ = out.flush();
                }
            }
            let mut events = self
                .events
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if events.len() == EVENT_RING_CAPACITY {
                events.pop_front();
            }
            events.push_back(event);
            id
        }

        /// The retained lifecycle events, oldest first.
        pub fn events_snapshot(&self) -> Vec<ServerEvent> {
            let events = self
                .events
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            events.iter().cloned().collect()
        }
    }
}

#[cfg(not(feature = "trace"))]
mod enabled {
    use super::{QueryTrace, ServerEvent};
    use std::io::Write;

    /// No-op stand-in compiled when the `trace` feature is off; the
    /// serving path calls the same API and nothing is retained.
    #[derive(Debug)]
    pub struct TraceLog;

    impl TraceLog {
        /// Accepts (and ignores) the capacity so callers are identical
        /// across feature configurations.
        pub fn new(_capacity: usize) -> Self {
            Self
        }

        /// Always `false` in this build.
        pub fn enabled(&self) -> bool {
            false
        }

        /// Drops the sink; nothing is ever written in this build.
        pub fn set_sink(&self, _sink: Option<Box<dyn Write + Send>>) {}

        /// Drops the record; the id is always 0.
        pub fn record(&self, _trace: QueryTrace) -> u64 {
            0
        }

        /// Always empty in this build.
        pub fn snapshot(&self) -> Vec<QueryTrace> {
            Vec::new()
        }

        /// Drops the event; the id is always 0.
        pub fn record_event(&self, _kind: &'static str, _detail: impl Into<String>) -> u64 {
            0
        }

        /// Always empty in this build.
        pub fn events_snapshot(&self) -> Vec<ServerEvent> {
            Vec::new()
        }
    }
}

pub use enabled::TraceLog;

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    fn sample(engine: &'static str) -> QueryTrace {
        QueryTrace {
            id: 0,
            proto: "tcp",
            engine,
            query_len: 32,
            clamped: false,
            wave_size: 1,
            queue_wait_us: 10,
            engine_us: 250,
            hits: 2,
            termination: "complete",
        }
    }

    #[test]
    fn ring_evicts_oldest_and_ids_are_monotone() {
        let log = TraceLog::new(3);
        for _ in 0..5 {
            log.record(sample("alae"));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        let ids: Vec<u64> = snap.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn sink_mirrors_one_line_per_record() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Capture(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Capture {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let capture = Capture(Arc::new(Mutex::new(Vec::new())));
        let log = TraceLog::new(2);
        log.set_sink(Some(Box::new(capture.clone())));
        log.record(sample("alae"));
        log.record(sample("sw"));
        let text = String::from_utf8(capture.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with("query id=")));
    }

    #[test]
    fn events_keep_their_own_ring_and_share_the_id_sequence() {
        let log = TraceLog::new(2);
        log.record(sample("alae"));
        let event_id = log.record_event("reload", "outcome=ok epoch=2");
        assert_eq!(event_id, 2);
        // Query floods do not evict events.
        for _ in 0..8 {
            log.record(sample("alae"));
        }
        let events = log.events_snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "reload");
        let line = events[0].render_line();
        assert!(line.starts_with("event id=2 kind=reload "));
        assert!(line.contains("epoch=2"));
    }

    #[test]
    fn render_line_is_single_line_key_value() {
        let log = TraceLog::new(4);
        log.record(sample("bwtsw"));
        let snap = log.snapshot();
        let line = snap[0].render_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("engine=bwtsw"));
        assert!(line.contains("termination=complete"));
        assert!(line.starts_with("query id=1 "));
    }
}
