//! Occurrence (rank) structure over the BWT string — the hottest data
//! structure in the workspace.
//!
//! Backward search (Section 2.3 / [Ferragina & Manzini]) needs
//! `Occ(c, i)` — the number of occurrences of character `c` in the first `i`
//! positions of the BWT.  Every suffix-trie node expansion performed by
//! BWT-SW and ALAE (Section 5) turns into backward-search steps, so the cost
//! of a whole alignment run is dominated by how many BWT bytes these queries
//! touch.
//!
//! # Checkpoint-interleaving + single-scan design
//!
//! The table stores, every [`BLOCK`] positions, one *interleaved checkpoint
//! row* holding the absolute count of every code before the block.
//! Interleaving means the whole row for one block is contiguous, so
//! [`OccTable::rank_all`] — the query behind [`crate::FmIndex::extend_all`]
//! — answers `Occ(c, i)` for **every** code `c` with one row load plus
//! **one** scan of the in-block prefix, instead of the `σ` independent scans
//! a per-code `rank` loop would pay.  A trie-node expansion needs ranks at
//! both ends of its SA range, so it costs exactly **two block scans**,
//! independent of the alphabet size.
//!
//! # Two-level checkpoint rows
//!
//! Checkpoint rows use a two-level scheme ([`CheckpointScheme::TwoLevel`],
//! the default): a `u64` *super-block* row holding absolute counts every
//! `BLOCKS_PER_SUPER` blocks, plus a `u16` *delta* row per block holding
//! the count since the enclosing super-block.  A rank query reconstructs the
//! absolute count as `super + delta`.  The hot per-block row shrinks from
//! 4 bytes per code (the flat `u32` rows of
//! [`CheckpointScheme::FlatU32`], kept for comparison benchmarks) to
//! 2 bytes per code, so the row load touches half the bytes, and the
//! amortized checkpoint footprint drops from 4 to 3 bytes per code per block
//! — on the σ = 20 protein alphabet that is the difference between the
//! checkpoint rows thrashing the cache and staying resident.  A super-block
//! spans `8 × 128 = 1024` positions, so deltas always fit a `u16`.
//!
//! # Bit-parallel in-block scans and SIMD backends
//!
//! Every in-block scan bottoms out in one of the kernels of
//! [`crate::simd`], which exist in portable SWAR form and (on x86-64) as
//! SSE2 and runtime-detected AVX2 implementations.  The implementation is
//! chosen per table at construction — a [`crate::simd::ScanBackend`]
//! resolved once to a [`crate::simd::ActiveBackend`] — defaulting to the
//! widest the CPU supports (overridable process-wide via the
//! `ALAE_SCAN_BACKEND` environment variable, per table via
//! [`OccTable::with_backend`], and disabled entirely by the `force-swar`
//! cargo feature).  All backends are bit-exact: the SWAR kernels are the
//! reference the SIMD paths are property-tested against.
//!
//! Three storage layouts are selected at construction ([`RankLayout`]):
//!
//! * **`Bytes`** (generic, any `σ ≤ 30`): one byte per BWT character.
//!   Single-code `rank` compares eight characters per step with a SWAR
//!   equality mask and `u64::count_ones`; `rank_all` performs one byte
//!   histogram pass.
//! * **`PackedDna`** (`σ ≤ 6`, the DNA case): 2 bits per character, 32
//!   characters per `u64`.  The four *dense* (most frequent) codes live in
//!   the packed words and are counted with mask + popcount; the at-most-two
//!   *sparse* codes (BWT sentinel and record separators, which are rare by
//!   construction) live in an exception list — no scan at all.
//! * **`PackedNibble`** (`σ ≤ 18`: protein reduced alphabets, IUPAC DNA):
//!   4 bits per character, 16 characters per `u64`.  Up to 16 dense codes
//!   are counted with a SWAR nibble-equality mask + popcount
//!   (`eq4`); sparse codes use the same exception list as `PackedDna`.
//!
//! Both packed layouts encode exception slots as the dense pattern `0` and
//! subtract the in-range exception count from the first dense code, so ranks
//! stay exact.  The exception list keeps a cumulative per-block count (one
//! `u32` per checkpoint row, `ExceptionList::block_starts`), so locating
//! the exceptions of a block is O(1) plus a search bounded by the handful of
//! exceptions inside that one block — never a binary search over the whole
//! list, which matters for million-record databases with one separator per
//! record.
//!
//! When the on-by-default `occ-counters` cargo feature is enabled, the table
//! counts the block scans and storage bytes it touches
//! ([`OccTable::scan_snapshot`]); the engines surface the deltas in their
//! work counters so the `O(σ)` → `O(1)` scan reduction is measurable
//! end-to-end.  Disabling the feature removes the two relaxed `fetch_add`s
//! from every rank call (`scan_snapshot` then reports zeros).

use crate::simd::{self, ActiveBackend, ScanBackend, CHARS_PER_WORD, NIBBLE_CHARS_PER_WORD};
use alae_bioseq::SharedBytes;
#[cfg(feature = "occ-counters")]
use std::cell::Cell;
#[cfg(feature = "occ-counters")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of positions per sampled checkpoint block.
pub const BLOCK: usize = 128;

/// Checkpoint blocks per two-level super-block.
pub const BLOCKS_PER_SUPER: usize = 8;

/// Positions spanned by one super-block.
const SUPER_SPAN: usize = BLOCK * BLOCKS_PER_SUPER;

/// Number of codes kept in the 2-bit packed words.
const DENSE_CODES: usize = 4;

/// Largest code count eligible for the 2-bit packed layout (4 dense +
/// 2 sparse).
const PACKED_MAX_CODES: usize = DENSE_CODES + 2;

/// Number of codes kept in the nibble-packed words.
const NIBBLE_DENSE_CODES: usize = 16;

/// Largest code count eligible for the nibble layout (16 dense + 2 sparse).
const NIBBLE_MAX_CODES: usize = NIBBLE_DENSE_CODES + 2;

// The packed scans assume checkpoint blocks start on a word boundary, and
// the two-level deltas assume a super-block span fits a u16.
const _: () = assert!(BLOCK.is_multiple_of(CHARS_PER_WORD));
const _: () = assert!(BLOCK.is_multiple_of(NIBBLE_CHARS_PER_WORD));
const _: () = assert!(SUPER_SPAN <= u16::MAX as usize);

/// Storage layout for the in-block scan, chosen at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankLayout {
    /// Pick the narrowest layout the alphabet fits:
    /// [`RankLayout::PackedDna`] for `σ ≤ 6`, [`RankLayout::PackedNibble`]
    /// for `σ ≤ 18`, [`RankLayout::Bytes`] otherwise.
    Auto,
    /// One byte per character; SWAR equality scan.  Works for any alphabet.
    Bytes,
    /// 2 bits per character plus an exception list; popcount scan.
    /// Requires `code_count ≤ 6`.
    PackedDna,
    /// 4 bits per character plus an exception list; SWAR nibble-popcount
    /// scan.  Requires `code_count ≤ 18` (protein reduced alphabets,
    /// IUPAC DNA).
    PackedNibble,
}

/// Width of the checkpoint rows, chosen at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointScheme {
    /// `u64` absolute counts every `BLOCKS_PER_SUPER` blocks plus `u16`
    /// per-block deltas: hot rows are half as wide as `FlatU32` and the
    /// checkpoint footprint shrinks from 4 to 3 bytes per code per block.
    #[default]
    TwoLevel,
    /// One flat `u32` absolute count per code per block (the pre-two-level
    /// layout, kept for comparison benchmarks and tests).
    FlatU32,
}

/// Running totals of the work performed by rank queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanSnapshot {
    /// Number of in-block scans performed (one per `rank`/`rank_all` call
    /// that touched storage).
    pub block_scans: u64,
    /// Storage bytes covered by the scanned prefixes (logical footprint:
    /// one byte per character for the byte layout, a quarter/half byte for
    /// the packed layouts — not word-granular cache traffic).
    pub bytes_scanned: u64,
}

impl ScanSnapshot {
    /// Work performed since an earlier snapshot.
    pub fn since(&self, earlier: &ScanSnapshot) -> ScanSnapshot {
        ScanSnapshot {
            block_scans: self.block_scans - earlier.block_scans,
            bytes_scanned: self.bytes_scanned - earlier.bytes_scanned,
        }
    }
}

#[cfg(feature = "occ-counters")]
thread_local! {
    /// Per-thread scan totals across every table the thread queries.
    ///
    /// Engines snapshot-diff these around one `align` call
    /// ([`thread_scan_snapshot`]), which attributes scans to the run that
    /// performed them *exactly* — concurrent `search_batch` queries on other
    /// threads never bleed into the delta, unlike the index-wide atomics.
    static THREAD_BLOCK_SCANS: Cell<u64> = const { Cell::new(0) };
    /// Per-thread companion of `THREAD_BLOCK_SCANS` for bytes scanned.
    static THREAD_BYTES_SCANNED: Cell<u64> = const { Cell::new(0) };
}

/// Scan-work counters accumulated by the **calling thread**, across every
/// table it has queried (all zeros when the `occ-counters` feature is
/// disabled).
///
/// This is the per-run attribution primitive: an engine snapshots before and
/// after one alignment, and because each query runs on exactly one thread,
/// the [`ScanSnapshot::since`] delta counts that query's scans and nothing
/// else — exact even while other threads hammer the same shared index.
/// (Table-wide aggregates are still available from
/// [`OccTable::scan_snapshot`].)
pub fn thread_scan_snapshot() -> ScanSnapshot {
    #[cfg(feature = "occ-counters")]
    {
        ScanSnapshot {
            block_scans: THREAD_BLOCK_SCANS.with(Cell::get),
            bytes_scanned: THREAD_BYTES_SCANNED.with(Cell::get),
        }
    }
    #[cfg(not(feature = "occ-counters"))]
    ScanSnapshot::default()
}

/// Interior-mutable scan counters (`OccTable` is shared behind `Arc`).
///
/// With the `occ-counters` feature disabled this is a zero-sized no-op, so
/// the per-call accounting disappears entirely.
#[derive(Debug, Default)]
struct ScanCounter {
    #[cfg(feature = "occ-counters")]
    block_scans: AtomicU64,
    #[cfg(feature = "occ-counters")]
    bytes_scanned: AtomicU64,
}

impl ScanCounter {
    #[inline]
    fn record(&self, bytes: usize) {
        #[cfg(feature = "occ-counters")]
        {
            // Index-wide totals (any thread may observe them) ...
            self.block_scans.fetch_add(1, Ordering::Relaxed);
            self.bytes_scanned
                .fetch_add(bytes as u64, Ordering::Relaxed);
            // ... plus the per-thread totals behind `thread_scan_snapshot`,
            // which make per-query attribution exact under concurrency.
            THREAD_BLOCK_SCANS.with(|c| c.set(c.get() + 1));
            THREAD_BYTES_SCANNED.with(|c| c.set(c.get() + bytes as u64));
        }
        #[cfg(not(feature = "occ-counters"))]
        let _ = bytes;
    }

    fn snapshot(&self) -> ScanSnapshot {
        #[cfg(feature = "occ-counters")]
        {
            ScanSnapshot {
                block_scans: self.block_scans.load(Ordering::Relaxed),
                bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
            }
        }
        #[cfg(not(feature = "occ-counters"))]
        ScanSnapshot::default()
    }
}

impl Clone for ScanCounter {
    fn clone(&self) -> Self {
        #[cfg(feature = "occ-counters")]
        {
            let snapshot = self.snapshot();
            Self {
                block_scans: AtomicU64::new(snapshot.block_scans),
                bytes_scanned: AtomicU64::new(snapshot.bytes_scanned),
            }
        }
        #[cfg(not(feature = "occ-counters"))]
        Self::default()
    }
}

/// Checkpoint rows in one of the two width schemes.
#[derive(Debug, Clone)]
enum Checkpoints {
    /// `flat[block * code_count + c]` = absolute count of `c` before the
    /// block.
    Flat(Vec<u32>),
    /// `supers[(block / BLOCKS_PER_SUPER) * code_count + c] +
    /// deltas[block * code_count + c]` = absolute count of `c` before the
    /// block.
    TwoLevel { supers: Vec<u64>, deltas: Vec<u16> },
}

impl Checkpoints {
    /// Build the rows for `data`; one row per block plus the final partial
    /// row, so queries at `i == len` resolve without special cases.
    fn build(data: &[u8], code_count: usize, scheme: CheckpointScheme) -> Self {
        let block_count = data.len() / BLOCK + 1;
        let mut running = vec![0u32; code_count];
        match scheme {
            CheckpointScheme::FlatU32 => {
                let mut flat = vec![0u32; block_count * code_count];
                for block in 0..block_count {
                    flat[block * code_count..(block + 1) * code_count].copy_from_slice(&running);
                    count_block(data, block, &mut running);
                }
                Checkpoints::Flat(flat)
            }
            CheckpointScheme::TwoLevel => {
                let super_count = block_count.div_ceil(BLOCKS_PER_SUPER);
                let mut supers = vec![0u64; super_count * code_count];
                let mut deltas = vec![0u16; block_count * code_count];
                let mut super_base = vec![0u32; code_count];
                for block in 0..block_count {
                    if block.is_multiple_of(BLOCKS_PER_SUPER) {
                        let s = block / BLOCKS_PER_SUPER;
                        for (c, &count) in running.iter().enumerate() {
                            supers[s * code_count + c] = count as u64;
                        }
                        super_base.copy_from_slice(&running);
                    }
                    for c in 0..code_count {
                        deltas[block * code_count + c] = (running[c] - super_base[c]) as u16;
                    }
                    count_block(data, block, &mut running);
                }
                Checkpoints::TwoLevel { supers, deltas }
            }
        }
    }

    /// Which scheme the rows were built with.
    fn scheme(&self) -> CheckpointScheme {
        match self {
            Checkpoints::Flat(_) => CheckpointScheme::FlatU32,
            Checkpoints::TwoLevel { .. } => CheckpointScheme::TwoLevel,
        }
    }

    /// Absolute count of code `c` before `block`.
    #[inline]
    fn get(&self, block: usize, code_count: usize, c: usize) -> usize {
        match self {
            Checkpoints::Flat(flat) => flat[block * code_count + c] as usize,
            Checkpoints::TwoLevel { supers, deltas } => {
                let s = block / BLOCKS_PER_SUPER;
                supers[s * code_count + c] as usize + deltas[block * code_count + c] as usize
            }
        }
    }

    /// Copy the whole absolute row for `block` into `counts`.
    #[inline]
    fn row_into(&self, block: usize, code_count: usize, counts: &mut [u32]) {
        match self {
            Checkpoints::Flat(flat) => {
                counts.copy_from_slice(&flat[block * code_count..(block + 1) * code_count]);
            }
            Checkpoints::TwoLevel { supers, deltas } => {
                let super_row = &supers[(block / BLOCKS_PER_SUPER) * code_count..][..code_count];
                let delta_row = &deltas[block * code_count..][..code_count];
                for ((slot, &base), &delta) in counts.iter_mut().zip(super_row).zip(delta_row) {
                    // Counts fit u32 because indexed texts are capped at
                    // u32 positions (the flat scheme and every rank_all
                    // consumer are u32-wide); the u64 super rows only buy
                    // headroom for a future >4G-position format.
                    *slot = base as u32 + delta as u32;
                }
            }
        }
    }

    /// Heap footprint in bytes.
    fn size_in_bytes(&self) -> usize {
        match self {
            Checkpoints::Flat(flat) => flat.len() * std::mem::size_of::<u32>(),
            Checkpoints::TwoLevel { supers, deltas } => {
                supers.len() * std::mem::size_of::<u64>()
                    + deltas.len() * std::mem::size_of::<u16>()
            }
        }
    }
}

/// Add the histogram of checkpoint block `block` of `data` into `running`.
fn count_block(data: &[u8], block: usize, running: &mut [u32]) {
    let start = block * BLOCK;
    let end = ((block + 1) * BLOCK).min(data.len());
    if start < end {
        for &c in &data[start..end] {
            running[c as usize] += 1;
        }
    }
}

/// Sparse-code exceptions of a packed layout: positions holding codes below
/// the dense base, kept sorted with a cumulative per-block count.
#[derive(Debug, Clone, Default)]
struct ExceptionList {
    /// Positions holding sparse codes, sorted ascending.
    pos: Vec<u32>,
    /// The sparse code at each exception position.
    code: Vec<u8>,
    /// `block_starts[b]` = number of exceptions before position `b * BLOCK`
    /// (one `u32` per checkpoint row).  Makes the per-block exception lookup
    /// O(1) plus a search bounded by the exceptions inside that one block,
    /// instead of a binary search over the whole list.
    block_starts: Vec<u32>,
}

impl ExceptionList {
    /// Reassemble from serialized positions and codes (the per-block
    /// cumulative counts are derived, not stored).
    fn from_parts(
        pos: Vec<u32>,
        code: Vec<u8>,
        len: usize,
        dense_base: u8,
    ) -> Result<Self, String> {
        if pos.len() != code.len() {
            return Err(format!(
                "exception list arity mismatch: {} positions, {} codes",
                pos.len(),
                code.len()
            ));
        }
        if !pos.windows(2).all(|w| w[0] < w[1]) {
            return Err("exception positions must be strictly ascending".into());
        }
        if pos.last().is_some_and(|&p| p as usize >= len) {
            return Err("exception position past the end of the sequence".into());
        }
        if code.iter().any(|&c| c >= dense_base) {
            return Err(format!(
                "exception code not below the dense base {dense_base}"
            ));
        }
        let mut exc = Self {
            pos,
            code,
            block_starts: Vec::new(),
        };
        exc.finish(len);
        Ok(exc)
    }

    /// Derive the per-block cumulative counts once the sorted positions are
    /// complete; `len` is the underlying sequence length.
    fn finish(&mut self, len: usize) {
        let block_count = len / BLOCK + 1;
        self.block_starts = Vec::with_capacity(block_count);
        let mut k = 0usize;
        for block in 0..block_count {
            let start = (block * BLOCK) as u32;
            while k < self.pos.len() && self.pos[k] < start {
                k += 1;
            }
            self.block_starts.push(k as u32);
        }
    }

    /// Number of exceptions.
    #[inline]
    fn len(&self) -> usize {
        self.pos.len()
    }

    /// Index range into the exception lists covering positions
    /// `[block * BLOCK, i)`, where `i` lies inside `block` (or at its
    /// start).  O(1) block lookup + bounded in-block search.
    #[inline]
    fn block_range(&self, block: usize, i: usize) -> (usize, usize) {
        let lo = self.block_starts[block] as usize;
        let cap = self
            .block_starts
            .get(block + 1)
            .map_or(self.pos.len(), |&n| n as usize);
        let hi = lo + self.pos[lo..cap].partition_point(|&p| (p as usize) < i);
        (lo, hi)
    }

    /// The sparse code stored at position `i`, if `i` is an exception slot.
    #[inline]
    fn code_at(&self, i: usize) -> Option<u8> {
        let (lo, cap) = {
            let block = i / BLOCK;
            let lo = self.block_starts[block] as usize;
            let cap = self
                .block_starts
                .get(block + 1)
                .map_or(self.pos.len(), |&n| n as usize);
            (lo, cap)
        };
        self.pos[lo..cap]
            .binary_search(&(i as u32))
            .ok()
            .map(|k| self.code[lo + k])
    }

    /// Occurrences of sparse code `c` in `[block * BLOCK, i)`.
    #[inline]
    fn count_code(&self, block: usize, i: usize, c: u8) -> usize {
        let (lo, hi) = self.block_range(block, i);
        self.code[lo..hi].iter().filter(|&&e| e == c).count()
    }

    /// Heap footprint in bytes.
    fn size_in_bytes(&self) -> usize {
        self.pos.len() * 4 + self.code.len() + self.block_starts.len() * 4
    }
}

/// The in-block scan layouts.
#[derive(Debug, Clone)]
enum OccStorage {
    Bytes(SharedBytes),
    Packed(PackedDna),
    Nibble(PackedNibble),
}

/// Owned checkpoint rows, as serialized by the `alae-store` crate.
#[derive(Debug, Clone)]
pub enum CheckpointRows {
    /// Flat `u32` absolute counts ([`CheckpointScheme::FlatU32`]).
    Flat(Vec<u32>),
    /// Two-level `u64` super rows + `u16` deltas
    /// ([`CheckpointScheme::TwoLevel`]).
    TwoLevel {
        /// Absolute counts every `BLOCKS_PER_SUPER` blocks.
        supers: Vec<u64>,
        /// Per-block counts since the enclosing super row.
        deltas: Vec<u16>,
    },
}

/// Borrowed view of the checkpoint rows (the save path's counterpart of
/// [`CheckpointRows`]).
#[derive(Debug, Clone, Copy)]
pub enum CheckpointRowsRef<'a> {
    /// Flat `u32` absolute counts.
    Flat(&'a [u32]),
    /// Two-level super rows + deltas.
    TwoLevel {
        /// Absolute counts every `BLOCKS_PER_SUPER` blocks.
        supers: &'a [u64],
        /// Per-block counts since the enclosing super row.
        deltas: &'a [u16],
    },
}

/// Owned storage payload, as serialized by the `alae-store` crate.  The
/// derived quantities (dense base, dense-code count, per-block exception
/// offsets) are reconstructed by [`OccTable::from_parts`], not stored.
#[derive(Debug, Clone)]
pub enum StorageData {
    /// One byte per character (possibly a zero-copy view into a mapped
    /// file).
    Bytes(SharedBytes),
    /// 2-bit packed words plus the sparse-code exception list.
    PackedDna {
        /// 32 characters per word, 2 bits each.
        words: Vec<u64>,
        /// Exception positions, sorted ascending.
        exc_pos: Vec<u32>,
        /// The sparse code at each exception position.
        exc_code: Vec<u8>,
    },
    /// 4-bit packed words plus the sparse-code exception list.
    PackedNibble {
        /// 16 characters per word, 4 bits each.
        words: Vec<u64>,
        /// Exception positions, sorted ascending.
        exc_pos: Vec<u32>,
        /// The sparse code at each exception position.
        exc_code: Vec<u8>,
    },
}

/// Borrowed view of the storage payload (the save path's counterpart of
/// [`StorageData`]).
#[derive(Debug, Clone, Copy)]
pub enum StorageDataRef<'a> {
    /// One byte per character.
    Bytes(&'a SharedBytes),
    /// 2-bit packed words plus the exception list.
    PackedDna {
        /// 32 characters per word, 2 bits each.
        words: &'a [u64],
        /// Exception positions, sorted ascending.
        exc_pos: &'a [u32],
        /// The sparse code at each exception position.
        exc_code: &'a [u8],
    },
    /// 4-bit packed words plus the exception list.
    PackedNibble {
        /// 16 characters per word, 4 bits each.
        words: &'a [u64],
        /// Exception positions, sorted ascending.
        exc_pos: &'a [u32],
        /// The sparse code at each exception position.
        exc_code: &'a [u8],
    },
}

/// 2-bit packed characters plus an exception list for sparse codes.
#[derive(Debug, Clone)]
struct PackedDna {
    /// 32 characters per word, 2 bits each, little-endian within the word.
    words: Vec<u64>,
    /// Smallest dense code; packed pattern = `code - dense_base`.
    dense_base: u8,
    /// Positions holding sparse codes (`code < dense_base`).
    exc: ExceptionList,
}

impl PackedDna {
    fn build(data: &[u8], code_count: usize) -> Self {
        let dense_base = code_count.saturating_sub(DENSE_CODES) as u8;
        let mut words = vec![0u64; data.len().div_ceil(CHARS_PER_WORD)];
        let mut exc = ExceptionList::default();
        for (i, &c) in data.iter().enumerate() {
            let pattern = if c >= dense_base {
                (c - dense_base) as u64
            } else {
                exc.pos.push(i as u32);
                exc.code.push(c);
                0 // Filler; queries subtract the exception count from code 0.
            };
            words[i / CHARS_PER_WORD] |= pattern << (2 * (i % CHARS_PER_WORD));
        }
        exc.finish(data.len());
        Self {
            words,
            dense_base,
            exc,
        }
    }

    /// Character at position `i`.
    #[inline]
    fn get(&self, i: usize) -> u8 {
        if let Some(code) = self.exc.code_at(i) {
            return code;
        }
        let pattern = (self.words[i / CHARS_PER_WORD] >> (2 * (i % CHARS_PER_WORD))) & 3;
        self.dense_base + pattern as u8
    }

    /// Occurrences of the 2-bit `pattern` in positions `[start, end)`;
    /// `start` must be word-aligned.  Exception slots count as pattern 0.
    #[inline]
    fn count_pattern(
        &self,
        pattern: u64,
        start: usize,
        end: usize,
        backend: ActiveBackend,
    ) -> usize {
        simd::count_pattern_2bit(&self.words, pattern, start, end, backend)
    }

    /// Occurrence histogram of all four dense patterns over `[start, end)`
    /// in a single pass; `start` must be word-aligned.
    #[inline]
    fn count_all(
        &self,
        start: usize,
        end: usize,
        out: &mut [u32; DENSE_CODES],
        backend: ActiveBackend,
    ) {
        simd::count_all_2bit(&self.words, start, end, out, backend);
    }

    fn size_in_bytes(&self) -> usize {
        self.words.len() * 8 + self.exc.size_in_bytes()
    }
}

/// 4-bit packed characters plus an exception list for sparse codes.
#[derive(Debug, Clone)]
struct PackedNibble {
    /// 16 characters per word, 4 bits each, little-endian within the word.
    words: Vec<u64>,
    /// Smallest dense code; packed nibble = `code - dense_base`.
    dense_base: u8,
    /// Number of dense codes actually in use (`code_count - dense_base`).
    dense_used: usize,
    /// Positions holding sparse codes (`code < dense_base`).
    exc: ExceptionList,
}

impl PackedNibble {
    fn build(data: &[u8], code_count: usize) -> Self {
        let dense_base = code_count.saturating_sub(NIBBLE_DENSE_CODES) as u8;
        let dense_used = code_count - dense_base as usize;
        let mut words = vec![0u64; data.len().div_ceil(NIBBLE_CHARS_PER_WORD)];
        let mut exc = ExceptionList::default();
        for (i, &c) in data.iter().enumerate() {
            let pattern = if c >= dense_base {
                (c - dense_base) as u64
            } else {
                exc.pos.push(i as u32);
                exc.code.push(c);
                0 // Filler; queries subtract the exception count from code 0.
            };
            words[i / NIBBLE_CHARS_PER_WORD] |= pattern << (4 * (i % NIBBLE_CHARS_PER_WORD));
        }
        exc.finish(data.len());
        Self {
            words,
            dense_base,
            dense_used,
            exc,
        }
    }

    /// Character at position `i`.
    #[inline]
    fn get(&self, i: usize) -> u8 {
        if let Some(code) = self.exc.code_at(i) {
            return code;
        }
        let pattern =
            (self.words[i / NIBBLE_CHARS_PER_WORD] >> (4 * (i % NIBBLE_CHARS_PER_WORD))) & 0xF;
        self.dense_base + pattern as u8
    }

    /// Occurrences of the 4-bit `pattern` in positions `[start, end)`;
    /// `start` must be word-aligned.  Exception slots count as pattern 0.
    #[inline]
    fn count_pattern(
        &self,
        pattern: u64,
        start: usize,
        end: usize,
        backend: ActiveBackend,
    ) -> usize {
        simd::count_pattern_nibble(&self.words, pattern, start, end, backend)
    }

    /// Occurrence histogram of every dense pattern over `[start, end)` in a
    /// single pass, accumulated straight into `out` (`out[pattern] += 1`,
    /// so callers pass their counts slice offset by `dense_base`).  The SWAR
    /// kernel loads each storage word once and shifts its nibbles out; the
    /// SIMD kernels compare the low/high nibble planes of a whole vector
    /// against every dense pattern.  `start` must be word-aligned; exception
    /// slots count as pattern 0.
    #[inline]
    fn count_into(&self, start: usize, end: usize, out: &mut [u32], backend: ActiveBackend) {
        debug_assert!(out.len() >= self.dense_used);
        simd::nibble_histogram_into(&self.words, start, end, out, backend);
    }

    fn size_in_bytes(&self) -> usize {
        self.words.len() * 8 + self.exc.size_in_bytes()
    }
}

/// Sampled occurrence counts over a byte sequence.
#[derive(Debug, Clone)]
pub struct OccTable {
    /// Number of distinct codes (alphabet size including the sentinel).
    code_count: usize,
    /// Sequence length.
    len: usize,
    /// Interleaved checkpoint rows (one per block).
    checkpoints: Checkpoints,
    /// The BWT characters in one of the scan layouts.
    storage: OccStorage,
    /// The scan-kernel implementation resolved at construction.
    backend: ActiveBackend,
    /// Scan-work accounting.
    scans: ScanCounter,
}

impl OccTable {
    /// Build the table for `data` where all codes are `< code_count`,
    /// auto-selecting the storage layout and the default (two-level)
    /// checkpoint scheme.
    pub fn new(data: Vec<u8>, code_count: usize) -> Self {
        Self::build(
            data,
            code_count,
            RankLayout::Auto,
            CheckpointScheme::default(),
            simd::default_backend(),
        )
    }

    /// Build with an explicit storage layout (used by tests and benchmarks
    /// to compare the scan paths).
    #[deprecated(note = "use IndexOptions::new().layout(..).build_occ_table(..)")]
    pub fn with_layout(data: Vec<u8>, code_count: usize, layout: RankLayout) -> Self {
        Self::build(
            data,
            code_count,
            layout,
            CheckpointScheme::default(),
            simd::default_backend(),
        )
    }

    /// Build with an explicit storage layout *and* checkpoint scheme; the
    /// scan backend comes from [`simd::default_backend`] (the
    /// `ALAE_SCAN_BACKEND` environment variable, else auto-detection).
    #[deprecated(note = "use IndexOptions::new().layout(..).checkpoints(..).build_occ_table(..)")]
    pub fn with_options(
        data: Vec<u8>,
        code_count: usize,
        layout: RankLayout,
        scheme: CheckpointScheme,
    ) -> Self {
        Self::build(data, code_count, layout, scheme, simd::default_backend())
    }

    /// Build with every knob explicit, including the scan backend (used by
    /// the backend-agreement tests and the per-backend benchmark
    /// configurations).
    #[deprecated(note = "use IndexOptions::new().backend(..).build_occ_table(..)")]
    pub fn with_backend(
        data: Vec<u8>,
        code_count: usize,
        layout: RankLayout,
        scheme: CheckpointScheme,
        backend: ScanBackend,
    ) -> Self {
        Self::build(data, code_count, layout, scheme, backend)
    }

    /// The one real constructor (every public constructor and
    /// [`crate::IndexOptions`] funnel here).
    pub(crate) fn build(
        data: Vec<u8>,
        code_count: usize,
        layout: RankLayout,
        scheme: CheckpointScheme,
        backend: ScanBackend,
    ) -> Self {
        assert!(code_count > 0);
        debug_assert!(data.iter().all(|&c| (c as usize) < code_count));
        let checkpoints = Checkpoints::build(&data, code_count, scheme);
        let layout = match layout {
            RankLayout::Auto => {
                if code_count <= PACKED_MAX_CODES {
                    RankLayout::PackedDna
                } else if code_count <= NIBBLE_MAX_CODES {
                    RankLayout::PackedNibble
                } else {
                    RankLayout::Bytes
                }
            }
            RankLayout::PackedDna => {
                assert!(
                    code_count <= PACKED_MAX_CODES,
                    "packed layout supports at most {PACKED_MAX_CODES} codes, got {code_count}"
                );
                RankLayout::PackedDna
            }
            RankLayout::PackedNibble => {
                assert!(
                    code_count <= NIBBLE_MAX_CODES,
                    "nibble layout supports at most {NIBBLE_MAX_CODES} codes, got {code_count}"
                );
                RankLayout::PackedNibble
            }
            RankLayout::Bytes => RankLayout::Bytes,
        };
        let len = data.len();
        let storage = match layout {
            RankLayout::PackedDna => OccStorage::Packed(PackedDna::build(&data, code_count)),
            RankLayout::PackedNibble => OccStorage::Nibble(PackedNibble::build(&data, code_count)),
            _ => OccStorage::Bytes(SharedBytes::from_vec(data)),
        };
        Self {
            code_count,
            len,
            checkpoints,
            storage,
            backend: backend.resolve(),
            scans: ScanCounter::default(),
        }
    }

    /// Length of the underlying sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct codes the table was built for.
    #[inline]
    pub fn code_count(&self) -> usize {
        self.code_count
    }

    /// The layout actually selected at construction.
    pub fn layout(&self) -> RankLayout {
        match self.storage {
            OccStorage::Bytes(_) => RankLayout::Bytes,
            OccStorage::Packed(_) => RankLayout::PackedDna,
            OccStorage::Nibble(_) => RankLayout::PackedNibble,
        }
    }

    /// The checkpoint scheme selected at construction.
    pub fn checkpoint_scheme(&self) -> CheckpointScheme {
        self.checkpoints.scheme()
    }

    /// The scan-kernel implementation resolved at construction.
    pub fn scan_backend(&self) -> ActiveBackend {
        self.backend
    }

    /// Character at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        match &self.storage {
            OccStorage::Bytes(data) => data[i],
            OccStorage::Packed(packed) => packed.get(i),
            OccStorage::Nibble(nibble) => nibble.get(i),
        }
    }

    /// `Occ(c, i)`: number of occurrences of `c` in `data[0..i]` (exclusive
    /// upper bound).  One checkpoint lookup plus one bit-parallel scan of at
    /// most `BLOCK` positions.
    #[inline]
    pub fn rank(&self, c: u8, i: usize) -> usize {
        debug_assert!(i <= self.len);
        debug_assert!((c as usize) < self.code_count);
        let block = i / BLOCK;
        let base = self.checkpoints.get(block, self.code_count, c as usize);
        let start = block * BLOCK;
        match &self.storage {
            OccStorage::Bytes(data) => {
                self.scans.record(i - start);
                base + simd::count_eq_bytes(&data[start..i], c, self.backend)
            }
            OccStorage::Packed(packed) => {
                if c < packed.dense_base {
                    // Sparse code: the exception list answers exactly,
                    // without touching the packed words.
                    base + packed.exc.count_code(block, i, c)
                } else {
                    self.scans.record((i - start).div_ceil(4));
                    let mut count = packed.count_pattern(
                        (c - packed.dense_base) as u64,
                        start,
                        i,
                        self.backend,
                    );
                    if c == packed.dense_base {
                        // Exception slots packed as pattern 0.
                        let (lo, hi) = packed.exc.block_range(block, i);
                        count -= hi - lo;
                    }
                    base + count
                }
            }
            OccStorage::Nibble(nibble) => {
                if c < nibble.dense_base {
                    base + nibble.exc.count_code(block, i, c)
                } else {
                    self.scans.record((i - start).div_ceil(2));
                    let mut count = nibble.count_pattern(
                        (c - nibble.dense_base) as u64,
                        start,
                        i,
                        self.backend,
                    );
                    if c == nibble.dense_base {
                        // Exception slots packed as pattern 0.
                        let (lo, hi) = nibble.exc.block_range(block, i);
                        count -= hi - lo;
                    }
                    base + count
                }
            }
        }
    }

    /// `Occ(c, i)` for **every** code `c` in one pass: one checkpoint row
    /// load plus a single scan of the in-block prefix.
    ///
    /// `counts` must have length [`OccTable::code_count`].  This is the
    /// single-scan primitive behind `FmIndex::extend_all`: expanding a trie
    /// node costs two `rank_all` calls — two block scans — independent of σ.
    pub fn rank_all(&self, i: usize, counts: &mut [u32]) {
        debug_assert!(i <= self.len);
        assert_eq!(counts.len(), self.code_count);
        let block = i / BLOCK;
        self.checkpoints.row_into(block, self.code_count, counts);
        let start = block * BLOCK;
        match &self.storage {
            OccStorage::Bytes(data) => {
                self.scans.record(i - start);
                simd::byte_histogram_prefix(data, start, i, counts, self.backend);
            }
            OccStorage::Packed(packed) => {
                self.scans.record((i - start).div_ceil(4));
                let mut dense = [0u32; DENSE_CODES];
                packed.count_all(start, i, &mut dense, self.backend);
                let (lo, hi) = packed.exc.block_range(block, i);
                dense[0] -= (hi - lo) as u32; // Exception slots packed as 0.
                for k in lo..hi {
                    counts[packed.exc.code[k] as usize] += 1;
                }
                let dense_base = packed.dense_base as usize;
                for (offset, &n) in dense.iter().enumerate() {
                    if dense_base + offset < self.code_count {
                        counts[dense_base + offset] += n;
                    }
                }
            }
            OccStorage::Nibble(nibble) => {
                self.scans.record((i - start).div_ceil(2));
                let dense_base = nibble.dense_base as usize;
                // Nibble patterns are `code - dense_base`, so offsetting the
                // counts slice lets the histogram accumulate in place with
                // no temporary.
                nibble.count_into(start, i, &mut counts[dense_base..], self.backend);
                let (lo, hi) = nibble.exc.block_range(block, i);
                counts[dense_base] -= (hi - lo) as u32; // Exceptions packed as 0.
                for k in lo..hi {
                    counts[nibble.exc.code[k] as usize] += 1;
                }
            }
        }
    }

    /// Scan-work counters accumulated since construction (all zeros when the
    /// `occ-counters` feature is disabled).
    pub fn scan_snapshot(&self) -> ScanSnapshot {
        self.scans.snapshot()
    }

    /// Approximate heap footprint in bytes (sequence + checkpoints), used by
    /// the index-size experiment (Figure 11).
    pub fn size_in_bytes(&self) -> usize {
        self.storage_bytes() + self.checkpoint_bytes()
    }

    /// Footprint of the character storage alone (packed words + exception
    /// lists, or the raw bytes).
    pub fn storage_bytes(&self) -> usize {
        match &self.storage {
            OccStorage::Bytes(data) => data.len(),
            OccStorage::Packed(packed) => packed.size_in_bytes(),
            OccStorage::Nibble(nibble) => nibble.size_in_bytes(),
        }
    }

    /// Footprint of the checkpoint rows alone.
    pub fn checkpoint_bytes(&self) -> usize {
        self.checkpoints.size_in_bytes()
    }

    /// Number of exception-list entries (0 for the byte layout).
    pub fn exception_count(&self) -> usize {
        match &self.storage {
            OccStorage::Bytes(_) => 0,
            OccStorage::Packed(packed) => packed.exc.len(),
            OccStorage::Nibble(nibble) => nibble.exc.len(),
        }
    }

    /// Borrowed view of the checkpoint rows (serialization support).
    pub fn checkpoint_rows(&self) -> CheckpointRowsRef<'_> {
        match &self.checkpoints {
            Checkpoints::Flat(flat) => CheckpointRowsRef::Flat(flat),
            Checkpoints::TwoLevel { supers, deltas } => {
                CheckpointRowsRef::TwoLevel { supers, deltas }
            }
        }
    }

    /// Borrowed view of the storage payload (serialization support).
    pub fn storage_data(&self) -> StorageDataRef<'_> {
        match &self.storage {
            OccStorage::Bytes(data) => StorageDataRef::Bytes(data),
            OccStorage::Packed(packed) => StorageDataRef::PackedDna {
                words: &packed.words,
                exc_pos: &packed.exc.pos,
                exc_code: &packed.exc.code,
            },
            OccStorage::Nibble(nibble) => StorageDataRef::PackedNibble {
                words: &nibble.words,
                exc_pos: &nibble.exc.pos,
                exc_code: &nibble.exc.code,
            },
        }
    }

    /// Reassemble a table from serialized parts without rescanning the data
    /// (the `alae-store` open path).  Derived quantities — the dense base,
    /// the per-block exception offsets — are reconstructed; the checkpoint
    /// rows are validated for shape (content integrity is the store's
    /// per-section checksums' job).  The scan `backend` is resolved fresh
    /// because it is machine-specific and never serialized.
    pub fn from_parts(
        len: usize,
        code_count: usize,
        rows: CheckpointRows,
        storage: StorageData,
        backend: ScanBackend,
    ) -> Result<Self, String> {
        if code_count == 0 {
            return Err("code_count must be positive".into());
        }
        let block_count = len / BLOCK + 1;
        let checkpoints = match rows {
            CheckpointRows::Flat(flat) => {
                if flat.len() != block_count * code_count {
                    return Err(format!(
                        "flat checkpoint rows hold {} entries, expected {}",
                        flat.len(),
                        block_count * code_count
                    ));
                }
                Checkpoints::Flat(flat)
            }
            CheckpointRows::TwoLevel { supers, deltas } => {
                let super_count = block_count.div_ceil(BLOCKS_PER_SUPER);
                if deltas.len() != block_count * code_count {
                    return Err(format!(
                        "checkpoint deltas hold {} entries, expected {}",
                        deltas.len(),
                        block_count * code_count
                    ));
                }
                if supers.len() != super_count * code_count {
                    return Err(format!(
                        "checkpoint super rows hold {} entries, expected {}",
                        supers.len(),
                        super_count * code_count
                    ));
                }
                Checkpoints::TwoLevel { supers, deltas }
            }
        };
        let storage = match storage {
            StorageData::Bytes(data) => {
                if data.len() != len {
                    return Err(format!(
                        "byte storage holds {} bytes, expected {len}",
                        data.len()
                    ));
                }
                OccStorage::Bytes(data)
            }
            StorageData::PackedDna {
                words,
                exc_pos,
                exc_code,
            } => {
                if code_count > PACKED_MAX_CODES {
                    return Err(format!(
                        "packed layout supports at most {PACKED_MAX_CODES} codes, got {code_count}"
                    ));
                }
                if words.len() != len.div_ceil(CHARS_PER_WORD) {
                    return Err(format!(
                        "packed storage holds {} words, expected {}",
                        words.len(),
                        len.div_ceil(CHARS_PER_WORD)
                    ));
                }
                let dense_base = code_count.saturating_sub(DENSE_CODES) as u8;
                let exc = ExceptionList::from_parts(exc_pos, exc_code, len, dense_base)?;
                OccStorage::Packed(PackedDna {
                    words,
                    dense_base,
                    exc,
                })
            }
            StorageData::PackedNibble {
                words,
                exc_pos,
                exc_code,
            } => {
                if code_count > NIBBLE_MAX_CODES {
                    return Err(format!(
                        "nibble layout supports at most {NIBBLE_MAX_CODES} codes, got {code_count}"
                    ));
                }
                if words.len() != len.div_ceil(NIBBLE_CHARS_PER_WORD) {
                    return Err(format!(
                        "nibble storage holds {} words, expected {}",
                        words.len(),
                        len.div_ceil(NIBBLE_CHARS_PER_WORD)
                    ));
                }
                let dense_base = code_count.saturating_sub(NIBBLE_DENSE_CODES) as u8;
                let dense_used = code_count - dense_base as usize;
                let exc = ExceptionList::from_parts(exc_pos, exc_code, len, dense_base)?;
                OccStorage::Nibble(PackedNibble {
                    words,
                    dense_base,
                    dense_used,
                    exc,
                })
            }
        };
        Ok(Self {
            code_count,
            len,
            checkpoints,
            storage,
            backend: backend.resolve(),
            scans: ScanCounter::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::IndexOptions;

    fn table(
        data: Vec<u8>,
        code_count: usize,
        layout: RankLayout,
        scheme: CheckpointScheme,
    ) -> OccTable {
        IndexOptions::new()
            .layout(layout)
            .checkpoints(scheme)
            .build_occ_table(data, code_count)
    }

    fn table_with_layout(data: Vec<u8>, code_count: usize, layout: RankLayout) -> OccTable {
        table(data, code_count, layout, CheckpointScheme::default())
    }

    fn table_with_backend(
        data: Vec<u8>,
        code_count: usize,
        layout: RankLayout,
        scheme: CheckpointScheme,
        backend: ScanBackend,
    ) -> OccTable {
        IndexOptions::new()
            .layout(layout)
            .checkpoints(scheme)
            .backend(backend)
            .build_occ_table(data, code_count)
    }

    fn naive_rank(data: &[u8], c: u8, i: usize) -> usize {
        data[..i].iter().filter(|&&b| b == c).count()
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    const LAYOUTS: [RankLayout; 4] = [
        RankLayout::Auto,
        RankLayout::Bytes,
        RankLayout::PackedDna,
        RankLayout::PackedNibble,
    ];

    const SCHEMES: [CheckpointScheme; 2] = [CheckpointScheme::TwoLevel, CheckpointScheme::FlatU32];

    #[test]
    fn rank_matches_naive_on_small_input() {
        let data = vec![1u8, 2, 1, 3, 0, 1, 2, 2, 3, 1];
        for layout in LAYOUTS {
            for scheme in SCHEMES {
                let table = table(data.clone(), 4, layout, scheme);
                for c in 0..4u8 {
                    for i in 0..=data.len() {
                        assert_eq!(
                            table.rank(c, i),
                            naive_rank(&data, c, i),
                            "layout {layout:?} scheme {scheme:?} c={c} i={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rank_matches_naive_across_block_boundaries() {
        let mut state = 7u64;
        let data: Vec<u8> = (0..BLOCK * 3 + 17)
            .map(|_| (xorshift(&mut state) % 5) as u8)
            .collect();
        for layout in LAYOUTS {
            for scheme in SCHEMES {
                let table = table(data.clone(), 5, layout, scheme);
                for c in 0..5u8 {
                    for i in (0..=data.len()).step_by(7) {
                        assert_eq!(
                            table.rank(c, i),
                            naive_rank(&data, c, i),
                            "layout {layout:?} scheme {scheme:?}"
                        );
                    }
                    // Exactly at the boundaries.
                    for block in 0..=3 {
                        let i = (block * BLOCK).min(data.len());
                        assert_eq!(
                            table.rank(c, i),
                            naive_rank(&data, c, i),
                            "layout {layout:?} scheme {scheme:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rank_matches_naive_across_superblock_boundaries() {
        // Long enough to cross two super-block boundaries with a partial
        // tail, so the u64 + u16 reconstruction is exercised end-to-end.
        let mut state = 13u64;
        let data: Vec<u8> = (0..SUPER_SPAN * 2 + 3 * BLOCK + 41)
            .map(|_| (xorshift(&mut state) % 6) as u8)
            .collect();
        let table = table(
            data.clone(),
            6,
            RankLayout::Bytes,
            CheckpointScheme::TwoLevel,
        );
        for c in 0..6u8 {
            for i in (0..=data.len()).step_by(97) {
                assert_eq!(table.rank(c, i), naive_rank(&data, c, i), "c={c} i={i}");
            }
            for s in 0..=2 {
                for b in 0..BLOCKS_PER_SUPER {
                    let i = (s * SUPER_SPAN + b * BLOCK).min(data.len());
                    assert_eq!(table.rank(c, i), naive_rank(&data, c, i), "c={c} i={i}");
                }
            }
        }
    }

    #[test]
    fn rank_all_matches_per_code_rank() {
        let mut state = 99u64;
        for code_count in [2usize, 4, 6, 9, 16, 18, 21] {
            let data: Vec<u8> = (0..BLOCK * 2 + 61)
                .map(|_| (xorshift(&mut state) % code_count as u64) as u8)
                .collect();
            for scheme in SCHEMES {
                let table = table(data.clone(), code_count, RankLayout::Auto, scheme);
                let mut counts = vec![0u32; code_count];
                for i in (0..=data.len()).step_by(13) {
                    table.rank_all(i, &mut counts);
                    for c in 0..code_count as u8 {
                        assert_eq!(
                            counts[c as usize] as usize,
                            naive_rank(&data, c, i),
                            "code_count={code_count} scheme={scheme:?} c={c} i={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn packed_and_bytes_layouts_agree() {
        let mut state = 4242u64;
        for code_count in [1usize, 2, 4, 5, 6] {
            let data: Vec<u8> = (0..BLOCK * 2 + 93)
                .map(|_| (xorshift(&mut state) % code_count as u64) as u8)
                .collect();
            let bytes = table_with_layout(data.clone(), code_count, RankLayout::Bytes);
            let packed = table_with_layout(data.clone(), code_count, RankLayout::PackedDna);
            assert_eq!(bytes.layout(), RankLayout::Bytes);
            assert_eq!(packed.layout(), RankLayout::PackedDna);
            let mut counts_b = vec![0u32; code_count];
            let mut counts_p = vec![0u32; code_count];
            for i in (0..=data.len()).step_by(11) {
                bytes.rank_all(i, &mut counts_b);
                packed.rank_all(i, &mut counts_p);
                assert_eq!(counts_b, counts_p, "i={i} code_count={code_count}");
                for c in 0..code_count as u8 {
                    assert_eq!(bytes.rank(c, i), packed.rank(c, i), "c={c} i={i}");
                }
            }
            for (i, &expected) in data.iter().enumerate() {
                assert_eq!(bytes.get(i), packed.get(i), "i={i}");
                assert_eq!(bytes.get(i), expected);
            }
        }
    }

    #[test]
    fn nibble_and_bytes_layouts_agree() {
        let mut state = 31337u64;
        for code_count in [1usize, 5, 8, 12, 16, 17, 18] {
            let data: Vec<u8> = (0..BLOCK * 3 + 55)
                .map(|_| (xorshift(&mut state) % code_count as u64) as u8)
                .collect();
            let bytes = table_with_layout(data.clone(), code_count, RankLayout::Bytes);
            let nibble = table_with_layout(data.clone(), code_count, RankLayout::PackedNibble);
            assert_eq!(nibble.layout(), RankLayout::PackedNibble);
            let mut counts_b = vec![0u32; code_count];
            let mut counts_n = vec![0u32; code_count];
            for i in (0..=data.len()).step_by(9) {
                bytes.rank_all(i, &mut counts_b);
                nibble.rank_all(i, &mut counts_n);
                assert_eq!(counts_b, counts_n, "i={i} code_count={code_count}");
                for c in 0..code_count as u8 {
                    assert_eq!(bytes.rank(c, i), nibble.rank(c, i), "c={c} i={i}");
                }
            }
            for (i, &expected) in data.iter().enumerate() {
                assert_eq!(nibble.get(i), expected, "i={i}");
            }
        }
    }

    #[test]
    fn two_level_and_flat_checkpoints_agree() {
        let mut state = 2024u64;
        for code_count in [4usize, 18, 22] {
            let data: Vec<u8> = (0..SUPER_SPAN + 5 * BLOCK + 7)
                .map(|_| (xorshift(&mut state) % code_count as u64) as u8)
                .collect();
            let flat = table(
                data.clone(),
                code_count,
                RankLayout::Auto,
                CheckpointScheme::FlatU32,
            );
            let two_level = table(
                data.clone(),
                code_count,
                RankLayout::Auto,
                CheckpointScheme::TwoLevel,
            );
            assert_eq!(flat.checkpoint_scheme(), CheckpointScheme::FlatU32);
            assert_eq!(two_level.checkpoint_scheme(), CheckpointScheme::TwoLevel);
            let mut counts_f = vec![0u32; code_count];
            let mut counts_t = vec![0u32; code_count];
            for i in (0..=data.len()).step_by(17) {
                flat.rank_all(i, &mut counts_f);
                two_level.rank_all(i, &mut counts_t);
                assert_eq!(counts_f, counts_t, "code_count={code_count} i={i}");
                for c in 0..code_count as u8 {
                    assert_eq!(flat.rank(c, i), two_level.rank(c, i), "c={c} i={i}");
                }
            }
        }
    }

    #[test]
    fn two_level_checkpoints_are_smaller() {
        // The headline size claim: on a protein-sized alphabet the two-level
        // checkpoint rows take 3/4 of the flat u32 footprint (u16 rows plus
        // the amortized u64 super rows), and the row actually loaded per
        // rank is half as wide.
        let mut state = 555u64;
        let code_count = 22; // shifted protein: sentinel + separator + 20.
        let data: Vec<u8> = (0..SUPER_SPAN * 16)
            .map(|_| (xorshift(&mut state) % code_count as u64) as u8)
            .collect();
        let flat = table(
            data.clone(),
            code_count,
            RankLayout::Bytes,
            CheckpointScheme::FlatU32,
        );
        let two_level = table(
            data,
            code_count,
            RankLayout::Bytes,
            CheckpointScheme::TwoLevel,
        );
        assert!(
            two_level.checkpoint_bytes() < flat.checkpoint_bytes(),
            "two-level {} vs flat {}",
            two_level.checkpoint_bytes(),
            flat.checkpoint_bytes()
        );
        assert!(two_level.size_in_bytes() < flat.size_in_bytes());
        // ~3/4 of the flat rows (2 + 8/BLOCKS_PER_SUPER vs 4 bytes per code
        // per block), within slack for the partial tail rows.
        let ratio = two_level.checkpoint_bytes() as f64 / flat.checkpoint_bytes() as f64;
        assert!((0.70..0.80).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn auto_layout_picks_the_narrowest_fit() {
        let small = OccTable::new(vec![0u8, 1, 2, 3, 4, 5], 6);
        assert_eq!(small.layout(), RankLayout::PackedDna);
        let mid = OccTable::new((0u8..7).collect(), 7);
        assert_eq!(mid.layout(), RankLayout::PackedNibble);
        let nibble_edge = OccTable::new((0u8..18).collect(), 18);
        assert_eq!(nibble_edge.layout(), RankLayout::PackedNibble);
        let large = OccTable::new((0u8..19).collect(), 19);
        assert_eq!(large.layout(), RankLayout::Bytes);
    }

    #[test]
    fn sparse_codes_are_exact_in_the_packed_layouts() {
        // Mostly-dense data with rare sentinel/separator codes, mirroring a
        // real BWT (the lowest shifted codes are the sparse ones).
        let mut state = 31u64;
        for (layout, code_count, dense) in [
            (RankLayout::PackedDna, 6usize, 4usize),
            (RankLayout::PackedNibble, 18, 16),
        ] {
            let sparse = code_count - dense;
            let mut data: Vec<u8> = (0..BLOCK * 2)
                .map(|_| (xorshift(&mut state) % dense as u64) as u8 + sparse as u8)
                .collect();
            data[0] = 0;
            data[37] = 1;
            data[BLOCK] = 1;
            data[BLOCK + 1] = 1;
            let table = table_with_layout(data.clone(), code_count, layout);
            assert_eq!(table.exception_count(), 4);
            for c in 0..code_count as u8 {
                for i in (0..=data.len()).step_by(3) {
                    assert_eq!(
                        table.rank(c, i),
                        naive_rank(&data, c, i),
                        "layout {layout:?} c={c} i={i}"
                    );
                }
            }
            for (i, &c) in data.iter().enumerate() {
                assert_eq!(table.get(i), c);
            }
        }
    }

    #[test]
    fn exception_heavy_inputs_stay_exact() {
        // Pathological separator-heavy input (every third position is a
        // sparse code) across several blocks: stresses the per-block
        // cumulative exception counts.
        let mut state = 77u64;
        let code_count = 6usize;
        let data: Vec<u8> = (0..BLOCK * 5 + 19)
            .map(|i| {
                if i % 3 == 0 {
                    (xorshift(&mut state) % 2) as u8 // sparse: 0 or 1
                } else {
                    (xorshift(&mut state) % 4) as u8 + 2 // dense: 2..=5
                }
            })
            .collect();
        for layout in [RankLayout::PackedDna, RankLayout::PackedNibble] {
            let table = table_with_layout(data.clone(), code_count, layout);
            let mut counts = vec![0u32; code_count];
            for i in (0..=data.len()).step_by(5) {
                table.rank_all(i, &mut counts);
                for c in 0..code_count as u8 {
                    assert_eq!(
                        counts[c as usize] as usize,
                        naive_rank(&data, c, i),
                        "layout {layout:?} c={c} i={i}"
                    );
                    assert_eq!(table.rank(c, i), naive_rank(&data, c, i));
                }
            }
            for (i, &c) in data.iter().enumerate() {
                assert_eq!(table.get(i), c, "layout {layout:?} i={i}");
            }
        }
    }

    #[cfg(feature = "occ-counters")]
    #[test]
    fn scan_counters_track_rank_all_calls() {
        let data = vec![1u8; BLOCK + 40];
        let table = OccTable::new(data, 4);
        let before = table.scan_snapshot();
        let mut counts = [0u32; 4];
        table.rank_all(BLOCK + 20, &mut counts);
        table.rank_all(10, &mut counts);
        let delta = table.scan_snapshot().since(&before);
        assert_eq!(delta.block_scans, 2);
        assert!(delta.bytes_scanned > 0);
    }

    #[cfg(feature = "occ-counters")]
    #[test]
    fn thread_scan_snapshot_attributes_per_thread_work_exactly() {
        // Two threads querying the *same* table: each thread's snapshot
        // delta counts its own scans only, while the table-wide totals see
        // the sum — the per-run attribution the engines rely on.
        let table = std::sync::Arc::new(OccTable::new(vec![2u8; BLOCK * 2], 4));
        let table_before = table.scan_snapshot();
        let scans_of = |calls: usize, table: &OccTable| {
            let before = thread_scan_snapshot();
            let mut counts = [0u32; 4];
            for _ in 0..calls {
                table.rank_all(BLOCK + 5, &mut counts);
            }
            thread_scan_snapshot().since(&before)
        };
        let handle = {
            let table = table.clone();
            std::thread::spawn(move || scans_of(7, &table))
        };
        let mine = scans_of(3, &table);
        let theirs = handle.join().expect("worker thread panicked");
        assert_eq!(mine.block_scans, 3);
        assert_eq!(theirs.block_scans, 7);
        assert_eq!(
            table.scan_snapshot().since(&table_before).block_scans,
            10,
            "table-wide totals aggregate across threads"
        );
    }

    #[test]
    fn empty_sequence() {
        for layout in LAYOUTS {
            let table = table_with_layout(Vec::new(), 3, layout);
            assert!(table.is_empty());
            assert_eq!(table.rank(0, 0), 0);
            assert_eq!(table.len(), 0);
            let mut counts = [0u32; 3];
            table.rank_all(0, &mut counts);
            assert_eq!(counts, [0, 0, 0]);
        }
    }

    #[test]
    fn get_returns_characters() {
        let data = vec![4u8, 3, 2, 1];
        let table = OccTable::new(data.clone(), 5);
        for (i, &c) in data.iter().enumerate() {
            assert_eq!(table.get(i), c);
        }
    }

    #[test]
    fn size_accounting_is_positive() {
        let bytes = table_with_layout(vec![1u8; 1000], 2, RankLayout::Bytes);
        assert!(bytes.size_in_bytes() >= 1000);
        // The packed layouts store the same data in a fraction of the space.
        let packed = table_with_layout(vec![1u8; 1000], 2, RankLayout::PackedDna);
        assert!(packed.size_in_bytes() < bytes.size_in_bytes());
        let nibble = table_with_layout(vec![1u8; 1000], 2, RankLayout::PackedNibble);
        assert!(nibble.size_in_bytes() < bytes.size_in_bytes());
        assert!(packed.size_in_bytes() < nibble.size_in_bytes());
    }

    /// Backends the running build can actually exercise (SWAR always;
    /// SSE2/AVX2 when the build and CPU support them).
    fn forced_backends() -> Vec<ScanBackend> {
        let mut backends = vec![ScanBackend::Swar];
        if ScanBackend::Simd.resolve().is_simd() {
            backends.push(ScanBackend::Simd);
        }
        backends
    }

    /// Random text over `code_count` codes, plus a separator-heavy twin
    /// (every third position is a low/sparse code).
    fn backend_test_texts(code_count: usize, len: usize, seed: u64) -> [Vec<u8>; 2] {
        let mut state = seed;
        let random: Vec<u8> = (0..len)
            .map(|_| (xorshift(&mut state) % code_count as u64) as u8)
            .collect();
        let sparse_cap = (code_count / 4).max(1) as u64;
        let separator_heavy: Vec<u8> = (0..len)
            .map(|i| {
                if i % 3 == 0 {
                    (xorshift(&mut state) % sparse_cap) as u8
                } else {
                    (xorshift(&mut state) % code_count as u64) as u8
                }
            })
            .collect();
        [random, separator_heavy]
    }

    #[test]
    fn every_backend_layout_scheme_combination_agrees() {
        // The tentpole exactness proof at the table level: for every
        // (layout × checkpoint scheme × backend) combination, ranks,
        // rank_all histograms, stored characters and (when compiled in)
        // scan-counter values are identical to the SWAR reference.
        for (layout, code_count) in [
            (RankLayout::Bytes, 21usize),
            (RankLayout::Bytes, 5),
            (RankLayout::PackedDna, 6),
            (RankLayout::PackedNibble, 18),
            (RankLayout::PackedNibble, 9),
        ] {
            for scheme in SCHEMES {
                for data in backend_test_texts(code_count, SUPER_SPAN + 2 * BLOCK + 37, 0xA1AE) {
                    let reference = table_with_backend(
                        data.clone(),
                        code_count,
                        layout,
                        scheme,
                        ScanBackend::Swar,
                    );
                    for backend in forced_backends() {
                        let table =
                            table_with_backend(data.clone(), code_count, layout, scheme, backend);
                        assert_eq!(table.layout(), layout);
                        let ref_before = reference.scan_snapshot();
                        let mut counts_ref = vec![0u32; code_count];
                        let mut counts = vec![0u32; code_count];
                        for i in (0..=data.len()).step_by(7) {
                            reference.rank_all(i, &mut counts_ref);
                            table.rank_all(i, &mut counts);
                            assert_eq!(
                                counts, counts_ref,
                                "rank_all {layout:?} {scheme:?} {backend:?} i={i}"
                            );
                            for c in 0..code_count as u8 {
                                assert_eq!(
                                    table.rank(c, i),
                                    reference.rank(c, i),
                                    "rank {layout:?} {scheme:?} {backend:?} c={c} i={i}"
                                );
                            }
                        }
                        for (i, &expected) in data.iter().enumerate() {
                            assert_eq!(table.get(i), expected);
                        }
                        // Scan accounting must not depend on the backend —
                        // BENCH_rank.json's scans-per-node are gated exactly.
                        // (The reference is re-queried per backend, so
                        // compare its per-iteration delta with the fresh
                        // table's total.)
                        assert_eq!(
                            table.scan_snapshot(),
                            reference.scan_snapshot().since(&ref_before)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forced_swar_tables_report_the_swar_backend() {
        let table = table_with_backend(
            vec![1u8; 300],
            4,
            RankLayout::Auto,
            CheckpointScheme::default(),
            ScanBackend::Swar,
        );
        assert_eq!(table.scan_backend(), ActiveBackend::Swar);
        // The default constructor resolves Auto (possibly to a SIMD
        // backend, depending on build/CPU/env).
        let auto = OccTable::new(vec![1u8; 300], 4);
        assert_eq!(auto.scan_backend(), simd::default_backend().resolve());
    }

    #[test]
    #[should_panic(expected = "packed layout")]
    fn packed_layout_rejects_large_alphabets() {
        let _ = table_with_layout(vec![0u8; 10], 7, RankLayout::PackedDna);
    }

    #[test]
    #[should_panic(expected = "nibble layout")]
    fn nibble_layout_rejects_large_alphabets() {
        let _ = table_with_layout(vec![0u8; 10], 19, RankLayout::PackedNibble);
    }
}
