//! Occurrence (rank) structure over the BWT string — the hottest data
//! structure in the workspace.
//!
//! Backward search (Section 2.3 / [Ferragina & Manzini]) needs
//! `Occ(c, i)` — the number of occurrences of character `c` in the first `i`
//! positions of the BWT.  Every suffix-trie node expansion performed by
//! BWT-SW and ALAE (Section 5) turns into backward-search steps, so the cost
//! of a whole alignment run is dominated by how many BWT bytes these queries
//! touch.
//!
//! # Checkpoint-interleaving + single-scan design
//!
//! The table stores, every [`BLOCK`] positions, one *interleaved checkpoint
//! row*: `checkpoints[block * code_count + c]` is the absolute count of code
//! `c` before the block.  Interleaving means the whole row for one block is
//! contiguous, so [`OccTable::rank_all`] — the query behind
//! [`crate::FmIndex::extend_all`] — answers `Occ(c, i)` for **every** code
//! `c` with one row copy plus **one** scan of the in-block prefix,
//! instead of the `σ` independent scans a per-code `rank` loop would pay.
//! A trie-node expansion needs ranks at both ends of its SA range, so it
//! costs exactly **two block scans**, independent of the alphabet size.
//!
//! # Bit-parallel in-block scans
//!
//! Two storage layouts are selected at construction ([`RankLayout`]):
//!
//! * **`Bytes`** (generic, any `σ ≤ 30`): one byte per BWT character.
//!   Single-code `rank` compares eight characters per step with a SWAR
//!   equality mask and `u64::count_ones`; `rank_all` performs one byte
//!   histogram pass.
//! * **`PackedDna`** (`σ ≤ 6`, the DNA case): 2 bits per character, 32
//!   characters per `u64`.  The four *dense* (most frequent) codes live in
//!   the packed words and are counted with mask + popcount; the at-most-two
//!   *sparse* codes (BWT sentinel and record separators, which are rare by
//!   construction) live in a sorted exception list and are counted with two
//!   binary searches — no scan at all.  Exception slots are packed as the
//!   dense pattern `00`, and every query subtracts the in-range exception
//!   count from the first dense code, so ranks stay exact.
//!
//! The table also counts the block scans and storage bytes it touches
//! ([`OccTable::scan_snapshot`]); the engines surface the deltas in their
//! work counters so the `O(σ)` → `O(1)` scan reduction is measurable
//! end-to-end.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of positions per sampled checkpoint block.
pub const BLOCK: usize = 128;

/// Characters per `u64` in the 2-bit packed layout.
const CHARS_PER_WORD: usize = 32;

/// Number of codes kept in the packed words (2 bits each).
const DENSE_CODES: usize = 4;

/// Largest code count eligible for the packed layout (4 dense + 2 sparse).
const PACKED_MAX_CODES: usize = DENSE_CODES + 2;

/// Low bit of every 2-bit group.
const GROUP_LOW_BITS: u64 = 0x5555_5555_5555_5555;

/// Low bit of every byte.
const BYTE_LOW_BITS: u64 = 0x0101_0101_0101_0101;

// The packed scan assumes checkpoint blocks start on a word boundary.
const _: () = assert!(BLOCK.is_multiple_of(CHARS_PER_WORD));

/// Storage layout for the in-block scan, chosen at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankLayout {
    /// Pick [`RankLayout::PackedDna`] when the alphabet fits (`σ ≤ 6`),
    /// [`RankLayout::Bytes`] otherwise.
    Auto,
    /// One byte per character; SWAR equality scan.  Works for any alphabet.
    Bytes,
    /// 2 bits per character plus an exception list; popcount scan.
    /// Requires `code_count ≤ 6`.
    PackedDna,
}

/// Running totals of the work performed by rank queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanSnapshot {
    /// Number of in-block scans performed (one per `rank`/`rank_all` call
    /// that touched storage).
    pub block_scans: u64,
    /// Storage bytes covered by the scanned prefixes (logical footprint:
    /// one byte per character for the byte layout, a quarter byte for the
    /// packed layout — not word-granular cache traffic).
    pub bytes_scanned: u64,
}

impl ScanSnapshot {
    /// Work performed since an earlier snapshot.
    pub fn since(&self, earlier: &ScanSnapshot) -> ScanSnapshot {
        ScanSnapshot {
            block_scans: self.block_scans - earlier.block_scans,
            bytes_scanned: self.bytes_scanned - earlier.bytes_scanned,
        }
    }
}

/// Interior-mutable scan counters (`OccTable` is shared behind `Arc`).
#[derive(Debug, Default)]
struct ScanCounter {
    block_scans: AtomicU64,
    bytes_scanned: AtomicU64,
}

impl ScanCounter {
    #[inline]
    fn record(&self, bytes: usize) {
        self.block_scans.fetch_add(1, Ordering::Relaxed);
        self.bytes_scanned
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ScanSnapshot {
        ScanSnapshot {
            block_scans: self.block_scans.load(Ordering::Relaxed),
            bytes_scanned: self.bytes_scanned.load(Ordering::Relaxed),
        }
    }
}

impl Clone for ScanCounter {
    fn clone(&self) -> Self {
        let snapshot = self.snapshot();
        Self {
            block_scans: AtomicU64::new(snapshot.block_scans),
            bytes_scanned: AtomicU64::new(snapshot.bytes_scanned),
        }
    }
}

/// Sampled occurrence counts over a byte sequence.
#[derive(Debug, Clone)]
pub struct OccTable {
    /// Number of distinct codes (alphabet size including the sentinel).
    code_count: usize,
    /// Sequence length.
    len: usize,
    /// `checkpoints[block * code_count + c]` = number of occurrences of `c`
    /// in `data[0 .. block*BLOCK]` (one interleaved row per block).
    checkpoints: Vec<u32>,
    /// The BWT characters in one of the two scan layouts.
    storage: OccStorage,
    /// Scan-work accounting.
    scans: ScanCounter,
}

/// The two in-block scan layouts.
#[derive(Debug, Clone)]
enum OccStorage {
    Bytes(Vec<u8>),
    Packed(PackedDna),
}

/// 2-bit packed characters plus a sorted exception list for sparse codes.
#[derive(Debug, Clone)]
struct PackedDna {
    /// 32 characters per word, 2 bits each, little-endian within the word.
    words: Vec<u64>,
    /// Smallest dense code; packed pattern = `code - dense_base`.
    dense_base: u8,
    /// Positions holding sparse codes (`code < dense_base`), sorted.
    exc_pos: Vec<u32>,
    /// The sparse code at each exception position.
    exc_code: Vec<u8>,
}

impl PackedDna {
    fn build(data: &[u8], code_count: usize) -> Self {
        let dense_base = code_count.saturating_sub(DENSE_CODES) as u8;
        let mut words = vec![0u64; data.len().div_ceil(CHARS_PER_WORD)];
        let mut exc_pos = Vec::new();
        let mut exc_code = Vec::new();
        for (i, &c) in data.iter().enumerate() {
            let pattern = if c >= dense_base {
                (c - dense_base) as u64
            } else {
                exc_pos.push(i as u32);
                exc_code.push(c);
                0 // Filler; queries subtract the exception count from code 0.
            };
            words[i / CHARS_PER_WORD] |= pattern << (2 * (i % CHARS_PER_WORD));
        }
        Self {
            words,
            dense_base,
            exc_pos,
            exc_code,
        }
    }

    /// Index range into the exception lists covering positions `[start, end)`.
    #[inline]
    fn exception_range(&self, start: usize, end: usize) -> (usize, usize) {
        let lo = self.exc_pos.partition_point(|&p| (p as usize) < start);
        let hi = self.exc_pos.partition_point(|&p| (p as usize) < end);
        (lo, hi)
    }

    /// Character at position `i`.
    #[inline]
    fn get(&self, i: usize) -> u8 {
        if let Ok(k) = self.exc_pos.binary_search(&(i as u32)) {
            return self.exc_code[k];
        }
        let pattern = (self.words[i / CHARS_PER_WORD] >> (2 * (i % CHARS_PER_WORD))) & 3;
        self.dense_base + pattern as u8
    }

    /// Occurrences of the 2-bit `pattern` in positions `[start, end)`;
    /// `start` must be word-aligned.  Exception slots count as pattern 0.
    fn count_pattern(&self, pattern: u64, start: usize, end: usize) -> usize {
        debug_assert_eq!(start % CHARS_PER_WORD, 0);
        let mut count = 0u32;
        let mut pos = start;
        let mut w = start / CHARS_PER_WORD;
        while pos < end {
            let rem = (end - pos).min(CHARS_PER_WORD);
            count += (eq2(self.words[w], pattern) & group_mask(rem)).count_ones();
            pos += rem;
            w += 1;
        }
        count as usize
    }

    /// Occurrence histogram of all four dense patterns over `[start, end)`
    /// in a single pass; `start` must be word-aligned.
    fn count_all(&self, start: usize, end: usize, out: &mut [u32; DENSE_CODES]) {
        debug_assert_eq!(start % CHARS_PER_WORD, 0);
        let mut pos = start;
        let mut w = start / CHARS_PER_WORD;
        while pos < end {
            let rem = (end - pos).min(CHARS_PER_WORD);
            let word = self.words[w];
            let (lo, hi) = (word, word >> 1);
            let mask = group_mask(rem);
            out[0] += (!hi & !lo & mask).count_ones();
            out[1] += (!hi & lo & mask).count_ones();
            out[2] += (hi & !lo & mask).count_ones();
            out[3] += (hi & lo & mask).count_ones();
            pos += rem;
            w += 1;
        }
    }

    fn size_in_bytes(&self) -> usize {
        self.words.len() * 8 + self.exc_pos.len() * 4 + self.exc_code.len()
    }
}

/// Low-bit-per-group equality mask: bit `2k` set iff group `k` equals
/// `pattern`.
#[inline]
fn eq2(word: u64, pattern: u64) -> u64 {
    let lo = if pattern & 1 != 0 { word } else { !word };
    let hi = if pattern & 2 != 0 {
        word >> 1
    } else {
        !(word >> 1)
    };
    lo & hi & GROUP_LOW_BITS
}

/// Mask selecting the first `rem` 2-bit groups of a word.
#[inline]
fn group_mask(rem: usize) -> u64 {
    let groups = if rem >= CHARS_PER_WORD {
        !0
    } else {
        (1u64 << (2 * rem)) - 1
    };
    groups & GROUP_LOW_BITS
}

/// Number of bytes of `data` equal to `c`, eight bytes per SWAR step.
fn count_eq_bytes(data: &[u8], c: u8) -> usize {
    let pattern = u64::from_ne_bytes([c; 8]);
    let mut count = 0usize;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_ne_bytes(chunk.try_into().unwrap());
        let x = word ^ pattern;
        // Fold each byte onto its low bit: low bit set iff the byte is
        // nonzero (all folds stay inside the byte, so this is exact — unlike
        // the borrow-based `haszero` trick, which is only a predicate).
        let mut folded = x | (x >> 4);
        folded |= folded >> 2;
        folded |= folded >> 1;
        count += 8 - (folded & BYTE_LOW_BITS).count_ones() as usize;
    }
    count + chunks.remainder().iter().filter(|&&b| b == c).count()
}

impl OccTable {
    /// Build the table for `data` where all codes are `< code_count`,
    /// auto-selecting the storage layout.
    pub fn new(data: Vec<u8>, code_count: usize) -> Self {
        Self::with_layout(data, code_count, RankLayout::Auto)
    }

    /// Build with an explicit storage layout (used by tests and benchmarks
    /// to compare the scan paths).
    pub fn with_layout(data: Vec<u8>, code_count: usize, layout: RankLayout) -> Self {
        assert!(code_count > 0);
        debug_assert!(data.iter().all(|&c| (c as usize) < code_count));
        let block_count = data.len() / BLOCK + 1;
        let mut checkpoints = vec![0u32; block_count * code_count];
        let mut running = vec![0u32; code_count];
        for (i, &c) in data.iter().enumerate() {
            if i % BLOCK == 0 {
                let block = i / BLOCK;
                checkpoints[block * code_count..(block + 1) * code_count].copy_from_slice(&running);
            }
            running[c as usize] += 1;
        }
        // Final checkpoint for positions at the very end.
        if data.len().is_multiple_of(BLOCK) {
            let block = data.len() / BLOCK;
            checkpoints[block * code_count..(block + 1) * code_count].copy_from_slice(&running);
        }
        let packed = match layout {
            RankLayout::Auto => code_count <= PACKED_MAX_CODES,
            RankLayout::PackedDna => {
                assert!(
                    code_count <= PACKED_MAX_CODES,
                    "packed layout supports at most {PACKED_MAX_CODES} codes, got {code_count}"
                );
                true
            }
            RankLayout::Bytes => false,
        };
        let len = data.len();
        let storage = if packed {
            OccStorage::Packed(PackedDna::build(&data, code_count))
        } else {
            OccStorage::Bytes(data)
        };
        Self {
            code_count,
            len,
            checkpoints,
            storage,
            scans: ScanCounter::default(),
        }
    }

    /// Length of the underlying sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct codes the table was built for.
    #[inline]
    pub fn code_count(&self) -> usize {
        self.code_count
    }

    /// The layout actually selected at construction.
    pub fn layout(&self) -> RankLayout {
        match self.storage {
            OccStorage::Bytes(_) => RankLayout::Bytes,
            OccStorage::Packed(_) => RankLayout::PackedDna,
        }
    }

    /// Character at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        match &self.storage {
            OccStorage::Bytes(data) => data[i],
            OccStorage::Packed(packed) => packed.get(i),
        }
    }

    /// `Occ(c, i)`: number of occurrences of `c` in `data[0..i]` (exclusive
    /// upper bound).  One checkpoint lookup plus one bit-parallel scan of at
    /// most `BLOCK` positions.
    #[inline]
    pub fn rank(&self, c: u8, i: usize) -> usize {
        debug_assert!(i <= self.len);
        debug_assert!((c as usize) < self.code_count);
        let block = i / BLOCK;
        let base = self.checkpoints[block * self.code_count + c as usize] as usize;
        let start = block * BLOCK;
        match &self.storage {
            OccStorage::Bytes(data) => {
                self.scans.record(i - start);
                base + count_eq_bytes(&data[start..i], c)
            }
            OccStorage::Packed(packed) => {
                let (lo, hi) = packed.exception_range(start, i);
                if c < packed.dense_base {
                    // Sparse code: the exception list answers exactly,
                    // without touching the packed words.
                    base + packed.exc_code[lo..hi].iter().filter(|&&e| e == c).count()
                } else {
                    self.scans.record((i - start).div_ceil(4));
                    let mut count = packed.count_pattern((c - packed.dense_base) as u64, start, i);
                    if c == packed.dense_base {
                        count -= hi - lo; // Exception slots packed as pattern 0.
                    }
                    base + count
                }
            }
        }
    }

    /// `Occ(c, i)` for **every** code `c` in one pass: one checkpoint row
    /// copy plus a single scan of the in-block prefix.
    ///
    /// `counts` must have length [`OccTable::code_count`].  This is the
    /// single-scan primitive behind `FmIndex::extend_all`: expanding a trie
    /// node costs two `rank_all` calls — two block scans — independent of σ.
    pub fn rank_all(&self, i: usize, counts: &mut [u32]) {
        debug_assert!(i <= self.len);
        assert_eq!(counts.len(), self.code_count);
        let block = i / BLOCK;
        counts.copy_from_slice(
            &self.checkpoints[block * self.code_count..(block + 1) * self.code_count],
        );
        let start = block * BLOCK;
        match &self.storage {
            OccStorage::Bytes(data) => {
                self.scans.record(i - start);
                for &b in &data[start..i] {
                    counts[b as usize] += 1;
                }
            }
            OccStorage::Packed(packed) => {
                self.scans.record((i - start).div_ceil(4));
                let mut dense = [0u32; DENSE_CODES];
                packed.count_all(start, i, &mut dense);
                let (lo, hi) = packed.exception_range(start, i);
                dense[0] -= (hi - lo) as u32; // Exception slots packed as 0.
                for k in lo..hi {
                    counts[packed.exc_code[k] as usize] += 1;
                }
                let dense_base = packed.dense_base as usize;
                for (offset, &n) in dense.iter().enumerate() {
                    if dense_base + offset < self.code_count {
                        counts[dense_base + offset] += n;
                    }
                }
            }
        }
    }

    /// Scan-work counters accumulated since construction.
    pub fn scan_snapshot(&self) -> ScanSnapshot {
        self.scans.snapshot()
    }

    /// Approximate heap footprint in bytes (sequence + checkpoints), used by
    /// the index-size experiment (Figure 11).
    pub fn size_in_bytes(&self) -> usize {
        let storage = match &self.storage {
            OccStorage::Bytes(data) => data.len(),
            OccStorage::Packed(packed) => packed.size_in_bytes(),
        };
        storage + self.checkpoints.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank(data: &[u8], c: u8, i: usize) -> usize {
        data[..i].iter().filter(|&&b| b == c).count()
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    const LAYOUTS: [RankLayout; 3] = [RankLayout::Auto, RankLayout::Bytes, RankLayout::PackedDna];

    #[test]
    fn rank_matches_naive_on_small_input() {
        let data = vec![1u8, 2, 1, 3, 0, 1, 2, 2, 3, 1];
        for layout in LAYOUTS {
            let table = OccTable::with_layout(data.clone(), 4, layout);
            for c in 0..4u8 {
                for i in 0..=data.len() {
                    assert_eq!(
                        table.rank(c, i),
                        naive_rank(&data, c, i),
                        "layout {layout:?} c={c} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_matches_naive_across_block_boundaries() {
        let mut state = 7u64;
        let data: Vec<u8> = (0..BLOCK * 3 + 17)
            .map(|_| (xorshift(&mut state) % 5) as u8)
            .collect();
        for layout in LAYOUTS {
            let table = OccTable::with_layout(data.clone(), 5, layout);
            for c in 0..5u8 {
                for i in (0..=data.len()).step_by(7) {
                    assert_eq!(
                        table.rank(c, i),
                        naive_rank(&data, c, i),
                        "layout {layout:?}"
                    );
                }
                // Exactly at the boundaries.
                for block in 0..=3 {
                    let i = (block * BLOCK).min(data.len());
                    assert_eq!(
                        table.rank(c, i),
                        naive_rank(&data, c, i),
                        "layout {layout:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_all_matches_per_code_rank() {
        let mut state = 99u64;
        for code_count in [2usize, 4, 6, 9, 21] {
            let data: Vec<u8> = (0..BLOCK * 2 + 61)
                .map(|_| (xorshift(&mut state) % code_count as u64) as u8)
                .collect();
            let table = OccTable::new(data.clone(), code_count);
            let mut counts = vec![0u32; code_count];
            for i in (0..=data.len()).step_by(13) {
                table.rank_all(i, &mut counts);
                for c in 0..code_count as u8 {
                    assert_eq!(
                        counts[c as usize] as usize,
                        naive_rank(&data, c, i),
                        "code_count={code_count} c={c} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_and_bytes_layouts_agree() {
        let mut state = 4242u64;
        for code_count in [1usize, 2, 4, 5, 6] {
            let data: Vec<u8> = (0..BLOCK * 2 + 93)
                .map(|_| (xorshift(&mut state) % code_count as u64) as u8)
                .collect();
            let bytes = OccTable::with_layout(data.clone(), code_count, RankLayout::Bytes);
            let packed = OccTable::with_layout(data.clone(), code_count, RankLayout::PackedDna);
            assert_eq!(bytes.layout(), RankLayout::Bytes);
            assert_eq!(packed.layout(), RankLayout::PackedDna);
            let mut counts_b = vec![0u32; code_count];
            let mut counts_p = vec![0u32; code_count];
            for i in (0..=data.len()).step_by(11) {
                bytes.rank_all(i, &mut counts_b);
                packed.rank_all(i, &mut counts_p);
                assert_eq!(counts_b, counts_p, "i={i} code_count={code_count}");
                for c in 0..code_count as u8 {
                    assert_eq!(bytes.rank(c, i), packed.rank(c, i), "c={c} i={i}");
                }
            }
            for (i, &expected) in data.iter().enumerate() {
                assert_eq!(bytes.get(i), packed.get(i), "i={i}");
                assert_eq!(bytes.get(i), expected);
            }
        }
    }

    #[test]
    fn auto_layout_packs_small_alphabets_only() {
        let small = OccTable::new(vec![0u8, 1, 2, 3, 4, 5], 6);
        assert_eq!(small.layout(), RankLayout::PackedDna);
        let large = OccTable::new(vec![0u8, 1, 2, 3, 4, 5, 6], 7);
        assert_eq!(large.layout(), RankLayout::Bytes);
    }

    #[test]
    fn sparse_codes_are_exact_in_the_packed_layout() {
        // Mostly-dense data with rare sentinel/separator codes, mirroring a
        // real DNA BWT (shifted codes 0 and 1 are the sparse ones).
        let mut state = 31u64;
        let mut data: Vec<u8> = (0..BLOCK * 2)
            .map(|_| (xorshift(&mut state) % 4) as u8 + 2)
            .collect();
        data[0] = 0;
        data[37] = 1;
        data[BLOCK] = 1;
        data[BLOCK + 1] = 1;
        let table = OccTable::with_layout(data.clone(), 6, RankLayout::PackedDna);
        for c in 0..6u8 {
            for i in (0..=data.len()).step_by(3) {
                assert_eq!(table.rank(c, i), naive_rank(&data, c, i), "c={c} i={i}");
            }
        }
        for (i, &c) in data.iter().enumerate() {
            assert_eq!(table.get(i), c);
        }
    }

    #[test]
    fn scan_counters_track_rank_all_calls() {
        let data = vec![1u8; BLOCK + 40];
        let table = OccTable::new(data, 4);
        let before = table.scan_snapshot();
        let mut counts = [0u32; 4];
        table.rank_all(BLOCK + 20, &mut counts);
        table.rank_all(10, &mut counts);
        let delta = table.scan_snapshot().since(&before);
        assert_eq!(delta.block_scans, 2);
        assert!(delta.bytes_scanned > 0);
    }

    #[test]
    fn empty_sequence() {
        for layout in LAYOUTS {
            let table = OccTable::with_layout(Vec::new(), 3, layout);
            assert!(table.is_empty());
            assert_eq!(table.rank(0, 0), 0);
            assert_eq!(table.len(), 0);
            let mut counts = [0u32; 3];
            table.rank_all(0, &mut counts);
            assert_eq!(counts, [0, 0, 0]);
        }
    }

    #[test]
    fn get_returns_characters() {
        let data = vec![4u8, 3, 2, 1];
        let table = OccTable::new(data.clone(), 5);
        for (i, &c) in data.iter().enumerate() {
            assert_eq!(table.get(i), c);
        }
    }

    #[test]
    fn size_accounting_is_positive() {
        let bytes = OccTable::with_layout(vec![1u8; 1000], 2, RankLayout::Bytes);
        assert!(bytes.size_in_bytes() >= 1000);
        // The packed layout stores the same data in a quarter of the space.
        let packed = OccTable::with_layout(vec![1u8; 1000], 2, RankLayout::PackedDna);
        assert!(packed.size_in_bytes() < bytes.size_in_bytes());
    }

    #[test]
    #[should_panic(expected = "packed layout")]
    fn packed_layout_rejects_large_alphabets() {
        let _ = OccTable::with_layout(vec![0u8; 10], 7, RankLayout::PackedDna);
    }
}
