//! Occurrence (rank) structure over the BWT string.
//!
//! Backward search (Section 2.3 / [Ferragina & Manzini]) needs
//! `Occ(c, i)` — the number of occurrences of character `c` in the first `i`
//! positions of the BWT — in constant time.  This module implements a
//! sampled occurrence table: absolute counts every [`BLOCK`] positions plus a
//! linear scan inside the block.  For the small alphabets of this workspace
//! (σ ≤ 21) the table costs `(σ+1) · n / BLOCK` 32-bit counters, and the
//! in-block scan touches at most `BLOCK` bytes — a classic space/time
//! trade-off matching the "compressed suffix array" space budget reported in
//! Figure 11 of the paper.

/// Number of positions per sampled block.
pub const BLOCK: usize = 128;

/// Sampled occurrence counts over a byte sequence.
#[derive(Debug, Clone)]
pub struct OccTable {
    /// The underlying byte sequence (the BWT string).
    data: Vec<u8>,
    /// Number of distinct codes (alphabet size including the sentinel).
    code_count: usize,
    /// `checkpoints[block * code_count + c]` = number of occurrences of `c`
    /// in `data[0 .. block*BLOCK]`.
    checkpoints: Vec<u32>,
}

impl OccTable {
    /// Build the table for `data` where all codes are `< code_count`.
    pub fn new(data: Vec<u8>, code_count: usize) -> Self {
        assert!(code_count > 0);
        debug_assert!(data.iter().all(|&c| (c as usize) < code_count));
        let block_count = data.len() / BLOCK + 1;
        let mut checkpoints = vec![0u32; block_count * code_count];
        let mut running = vec![0u32; code_count];
        for (i, &c) in data.iter().enumerate() {
            if i % BLOCK == 0 {
                let block = i / BLOCK;
                checkpoints[block * code_count..(block + 1) * code_count]
                    .copy_from_slice(&running);
            }
            running[c as usize] += 1;
        }
        // Final checkpoint for positions at the very end.
        if data.len() % BLOCK == 0 {
            let block = data.len() / BLOCK;
            checkpoints[block * code_count..(block + 1) * code_count].copy_from_slice(&running);
        }
        Self {
            data,
            code_count,
            checkpoints,
        }
    }

    /// Length of the underlying sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying byte sequence.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Character at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        self.data[i]
    }

    /// `Occ(c, i)`: number of occurrences of `c` in `data[0..i]` (exclusive
    /// upper bound).
    #[inline]
    pub fn rank(&self, c: u8, i: usize) -> usize {
        debug_assert!(i <= self.data.len());
        debug_assert!((c as usize) < self.code_count);
        let block = i / BLOCK;
        let mut count = self.checkpoints[block * self.code_count + c as usize] as usize;
        let start = block * BLOCK;
        for &b in &self.data[start..i] {
            count += (b == c) as usize;
        }
        count
    }

    /// Approximate heap footprint in bytes (sequence + checkpoints), used by
    /// the index-size experiment (Figure 11).
    pub fn size_in_bytes(&self) -> usize {
        self.data.len() + self.checkpoints.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank(data: &[u8], c: u8, i: usize) -> usize {
        data[..i].iter().filter(|&&b| b == c).count()
    }

    #[test]
    fn rank_matches_naive_on_small_input() {
        let data = vec![1u8, 2, 1, 3, 0, 1, 2, 2, 3, 1];
        let table = OccTable::new(data.clone(), 4);
        for c in 0..4u8 {
            for i in 0..=data.len() {
                assert_eq!(table.rank(c, i), naive_rank(&data, c, i), "c={c} i={i}");
            }
        }
    }

    #[test]
    fn rank_matches_naive_across_block_boundaries() {
        let mut state = 7u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let data: Vec<u8> = (0..BLOCK * 3 + 17).map(|_| (next() % 5) as u8).collect();
        let table = OccTable::new(data.clone(), 5);
        for c in 0..5u8 {
            for i in (0..=data.len()).step_by(7) {
                assert_eq!(table.rank(c, i), naive_rank(&data, c, i));
            }
            // Exactly at the boundaries.
            for block in 0..=3 {
                let i = (block * BLOCK).min(data.len());
                assert_eq!(table.rank(c, i), naive_rank(&data, c, i));
            }
        }
    }

    #[test]
    fn empty_sequence() {
        let table = OccTable::new(Vec::new(), 3);
        assert!(table.is_empty());
        assert_eq!(table.rank(0, 0), 0);
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn get_returns_characters() {
        let data = vec![4u8, 3, 2, 1];
        let table = OccTable::new(data.clone(), 5);
        for (i, &c) in data.iter().enumerate() {
            assert_eq!(table.get(i), c);
        }
        assert_eq!(table.data(), data.as_slice());
    }

    #[test]
    fn size_accounting_is_positive() {
        let table = OccTable::new(vec![1u8; 1000], 2);
        assert!(table.size_in_bytes() >= 1000);
    }
}
