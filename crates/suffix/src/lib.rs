//! Compressed suffix array substrate for the ALAE reproduction.
//!
//! Section 5 of the paper simulates suffix-trie traversals over the text `T`
//! with a compressed suffix array: a Burrows–Wheeler transform, rank
//! (occurrence) structures supporting backward search, and a sampled suffix
//! array for locating occurrences.  Because ALAE extends text substrings to
//! the *right* one character at a time (appending `c` behind `X`), the index
//! is built over the **reversed** text `T⁻¹`, so that appending a character on
//! the right of `X` becomes a backward-search extension on `(X)⁻¹` — exactly
//! the construction described in Section 5.
//!
//! The crate provides, from scratch (no external succinct-structure crates):
//!
//! * [`sais`] — linear-time suffix array construction (SA-IS),
//! * [`bwt`] — Burrows–Wheeler transform and its inversion,
//! * [`rank`] — byte-sequence rank structure (sampled occurrence counts),
//! * [`simd`] — the in-block scan kernels behind [`rank`], in portable SWAR
//!   and runtime-dispatched SSE2/AVX2 implementations,
//! * [`fm_index`] — FM-index with backward search and a sampled suffix array,
//! * [`trie`] — the suffix-trie emulation used by BWT-SW and ALAE
//!   ([`trie::SuffixTrieCursor`] extends a represented substring one
//!   character to the right).
//!
//! # Scan backends
//!
//! The hot in-block scans dispatch over a [`simd::ScanBackend`] resolved at
//! index construction: `Auto` (the default) picks the widest kernels the CPU
//! supports — AVX2 when `is_x86_feature_detected!` says so, SSE2 on any
//! other x86-64, the portable SWAR fallback elsewhere.  Selection is
//! forcible process-wide through the `ALAE_SCAN_BACKEND` environment
//! variable (`auto` | `swar` | `simd`), per index through the
//! `with_scan_backend` constructors, and at compile time through the
//! `force-swar` cargo feature (which removes the SIMD paths entirely).  All
//! backends produce bit-identical ranks and identical scan-counter values.
//!
//! `unsafe` is confined to the [`simd`] module (CI enforces this); the rest
//! of the crate is `#![deny(unsafe_code)]`.
#![deny(unsafe_code)]

pub mod bitvec;
pub mod bwt;
pub mod fm_index;
pub mod options;
pub mod rank;
pub mod sais;
pub mod simd;
pub mod trie;

pub use fm_index::{FmIndex, SaRange, MAX_CODE_COUNT};
pub use options::IndexOptions;
pub use sais::suffix_array_build_count;

pub use rank::{
    thread_scan_snapshot, CheckpointRows, CheckpointRowsRef, CheckpointScheme, RankLayout,
    ScanSnapshot, StorageData, StorageDataRef,
};
pub use simd::{ActiveBackend, ScanBackend};
pub use trie::{ChildBuf, SuffixTrieCursor, TextIndex, MAX_CHILDREN};

/// The sentinel code appended to the text before suffix-array construction.
///
/// It matches the record-separator code of `alae-bioseq` (0) and is smaller
/// than every alphabet character, mirroring the `$` of Section 2.3.
pub const SENTINEL: u8 = 0;
