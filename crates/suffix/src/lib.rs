//! Compressed suffix array substrate for the ALAE reproduction.
//!
//! Section 5 of the paper simulates suffix-trie traversals over the text `T`
//! with a compressed suffix array: a Burrows–Wheeler transform, rank
//! (occurrence) structures supporting backward search, and a sampled suffix
//! array for locating occurrences.  Because ALAE extends text substrings to
//! the *right* one character at a time (appending `c` behind `X`), the index
//! is built over the **reversed** text `T⁻¹`, so that appending a character on
//! the right of `X` becomes a backward-search extension on `(X)⁻¹` — exactly
//! the construction described in Section 5.
//!
//! The crate provides, from scratch (no external succinct-structure crates):
//!
//! * [`sais`] — linear-time suffix array construction (SA-IS),
//! * [`bwt`] — Burrows–Wheeler transform and its inversion,
//! * [`rank`] — byte-sequence rank structure (sampled occurrence counts),
//! * [`fm_index`] — FM-index with backward search and a sampled suffix array,
//! * [`trie`] — the suffix-trie emulation used by BWT-SW and ALAE
//!   ([`trie::SuffixTrieCursor`] extends a represented substring one
//!   character to the right).

pub mod bitvec;
pub mod bwt;
pub mod fm_index;
pub mod rank;
pub mod sais;
pub mod trie;

pub use fm_index::{FmIndex, SaRange, MAX_CODE_COUNT};
pub use rank::{CheckpointScheme, RankLayout, ScanSnapshot};
pub use trie::{ChildBuf, SuffixTrieCursor, TextIndex, MAX_CHILDREN};

/// The sentinel code appended to the text before suffix-array construction.
///
/// It matches the record-separator code of `alae-bioseq` (0) and is smaller
/// than every alphabet character, mirroring the `$` of Section 2.3.
pub const SENTINEL: u8 = 0;
