//! Burrows–Wheeler transform (Section 2.3).
//!
//! "Burrows and Wheeler propose a new compression algorithm based on a
//! reversible transformation, called BWT, which transforms a text T into a
//! new string that is easy to compress.  BWT appends a special symbol `$`
//! smaller than any other symbol of Σ at the end of T."
//!
//! The transform here operates on code sequences where the sentinel is the
//! value [`crate::SENTINEL`] (0); the position holding the sentinel in the
//! BWT string is recorded separately so the rank structures never need a
//! special out-of-alphabet symbol.

use crate::sais::suffix_array;

/// The Burrows–Wheeler transform of `text ⊕ $`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bwt {
    /// The transformed string, length `text.len() + 1`.  The entry at
    /// [`Bwt::sentinel_row`] is the sentinel itself (stored as
    /// [`crate::SENTINEL`]).
    pub data: Vec<u8>,
    /// Row of the conceptual sorted rotation matrix whose last column entry
    /// is the sentinel, i.e. the row corresponding to suffix 0.
    pub sentinel_row: usize,
}

/// Compute the BWT of `text ⊕ $` from its suffix array.
pub fn bwt_from_sa(text: &[u8], sa: &[u32]) -> Bwt {
    let n = sa.len();
    debug_assert_eq!(n, text.len() + 1);
    let mut data = Vec::with_capacity(n);
    let mut sentinel_row = 0;
    for (row, &p) in sa.iter().enumerate() {
        if p == 0 {
            data.push(crate::SENTINEL);
            sentinel_row = row;
        } else {
            data.push(text[p as usize - 1]);
        }
    }
    Bwt { data, sentinel_row }
}

/// Compute the BWT of `text ⊕ $` (builds the suffix array internally).
pub fn bwt(text: &[u8]) -> Bwt {
    bwt_from_sa(text, &suffix_array(text))
}

/// Invert a BWT back into the original text (without the sentinel).
///
/// Used only by tests and tooling; the ALAE index itself never needs the
/// inverse transform, but round-tripping is the strongest correctness check
/// for the transform + rank machinery.
pub fn inverse_bwt(bwt: &Bwt) -> Vec<u8> {
    let n = bwt.data.len();
    if n <= 1 {
        return Vec::new();
    }
    // Work on a shifted copy so the sentinel (which shares code 0 with
    // record separators in database texts) becomes a unique smallest symbol.
    let shifted: Vec<u16> = bwt
        .data
        .iter()
        .enumerate()
        .map(|(row, &c)| {
            if row == bwt.sentinel_row {
                0
            } else {
                c as u16 + 1
            }
        })
        .collect();
    // Count occurrences per symbol to build the C array (number of symbols
    // strictly smaller).
    let max_code = *shifted.iter().max().unwrap() as usize;
    let mut counts = vec![0usize; max_code + 2];
    for &c in &shifted {
        counts[c as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    // LF mapping: lf[i] = C[bwt[i]] + rank_{bwt[i]}(i).
    let mut occ_so_far = vec![0usize; max_code + 1];
    let mut lf = vec![0usize; n];
    for (i, &c) in shifted.iter().enumerate() {
        lf[i] = counts[c as usize] + occ_so_far[c as usize];
        occ_so_far[c as usize] += 1;
    }
    // Row 0 of the sorted rotation matrix begins with the sentinel; its BWT
    // character is the last character of the text.  Walking the LF mapping
    // from there reconstructs the text from its last character to its first.
    let mut out = vec![0u8; n - 1];
    let mut row = 0usize;
    for slot in out.iter_mut().rev() {
        *slot = bwt.data[row];
        row = lf[row];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ascii_bwt(text: &[u8]) -> String {
        let b = bwt(text);
        b.data
            .iter()
            .map(|&c| if c == crate::SENTINEL { '$' } else { c as char })
            .collect()
    }

    #[test]
    fn paper_example_gctagc() {
        // Section 2.3: the BWT transformation of GCTAGC$ is CTGGA$C.
        assert_eq!(ascii_bwt(b"GCTAGC"), "CTGGA$C");
    }

    #[test]
    fn classic_banana() {
        assert_eq!(ascii_bwt(b"BANANA"), "ANNB$AA");
    }

    #[test]
    fn round_trip_small() {
        for text in [
            b"".as_slice(),
            b"A",
            b"ACGT",
            b"MISSISSIPPI",
            b"GCTAGCTAGGCATCG",
            b"AAAAAAAA",
        ] {
            let transformed = bwt(text);
            assert_eq!(inverse_bwt(&transformed), text, "round trip for {text:?}");
        }
    }

    #[test]
    fn round_trip_encoded_with_separators() {
        let text = [1u8, 2, 3, 4, 0, 4, 3, 2, 1, 2, 0, 1, 1, 1];
        let transformed = bwt(&text);
        assert_eq!(inverse_bwt(&transformed), text);
    }

    #[test]
    fn round_trip_random() {
        let mut state = 0xdeadbeefu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [1usize, 17, 64, 257, 1000] {
            let text: Vec<u8> = (0..len).map(|_| (next() % 4) as u8 + 1).collect();
            let transformed = bwt(&text);
            assert_eq!(inverse_bwt(&transformed), text);
        }
    }

    #[test]
    fn bwt_is_permutation_of_input_plus_sentinel() {
        let text = b"GATTACA";
        let transformed = bwt(text);
        let mut sorted_bwt = transformed.data.clone();
        sorted_bwt.sort_unstable();
        let mut expected: Vec<u8> = text.to_vec();
        expected.push(crate::SENTINEL);
        expected.sort_unstable();
        assert_eq!(sorted_bwt, expected);
    }
}
