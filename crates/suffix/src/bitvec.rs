//! A plain bit vector with constant-time rank support.
//!
//! Used to mark sampled suffix-array rows in the FM-index without spending a
//! full word per row.  Rank checkpoints use the same two-level layout as the
//! occurrence table's [`crate::rank::CheckpointScheme::TwoLevel`]: a `u32`
//! absolute count every `BLOCKS_PER_SUPER` blocks of 512 bits plus a `u16`
//! per-block delta, i.e. 2.5 bytes per 512 bits (2 + 4/8) instead of the 4
//! a flat `u32` checkpoint costs — which is what keeps the "BWT index"
//! curve of Figure 11 close to the text size rather than a multiple of it.

use crate::simd::popcount_words;

/// Bits per rank block (one `u16` delta per block).
const BLOCK_BITS: usize = 512;
const WORDS_PER_BLOCK: usize = BLOCK_BITS / 64;

/// Blocks per superblock (one `u32` absolute count per superblock).
const BLOCKS_PER_SUPER: usize = 8;
const SUPER_BITS: usize = BLOCK_BITS * BLOCKS_PER_SUPER;

// Block deltas must fit a u16.
const _: () = assert!(SUPER_BITS <= u16::MAX as usize);

/// An immutable bit vector with `rank1` support.
#[derive(Debug, Clone)]
pub struct RankBitVec {
    len: usize,
    words: Vec<u64>,
    /// `superblocks[s]` = number of set bits in `words[0 .. s * BLOCKS_PER_SUPER * WORDS_PER_BLOCK]`.
    superblocks: Vec<u32>,
    /// `blocks[b]` = number of set bits between the enclosing superblock
    /// boundary and `words[b * WORDS_PER_BLOCK]`.
    blocks: Vec<u16>,
    /// Total number of set bits.
    ones: u32,
}

impl RankBitVec {
    /// Build from a boolean iterator of known length.
    pub fn from_bits(bits: impl ExactSizeIterator<Item = bool>) -> Self {
        let len = bits.len();
        let mut words = vec![0u64; len.div_ceil(64)];
        for (i, bit) in bits.enumerate() {
            if bit {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        Self::from_words(len, words)
    }

    /// Build from raw words (extra high bits in the final word must be zero).
    pub fn from_words(len: usize, words: Vec<u64>) -> Self {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        let block_count = words.len().div_ceil(WORDS_PER_BLOCK) + 1;
        let super_count = block_count.div_ceil(BLOCKS_PER_SUPER);
        let mut superblocks = vec![0u32; super_count];
        let mut blocks = vec![0u16; block_count];
        let mut running: u32 = 0;
        let mut super_base: u32 = 0;
        for block in 0..block_count {
            if block % BLOCKS_PER_SUPER == 0 {
                superblocks[block / BLOCKS_PER_SUPER] = running;
                super_base = running;
            }
            blocks[block] = (running - super_base) as u16;
            let start = block * WORDS_PER_BLOCK;
            let end = ((block + 1) * WORDS_PER_BLOCK).min(words.len());
            if start < end {
                running += popcount_words(&words[start..end]);
            }
        }
        Self {
            len,
            words,
            superblocks,
            blocks,
            ones: running,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits in positions `[0, i)`.
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let word_index = i / 64;
        let block = word_index / WORDS_PER_BLOCK;
        let mut count = self.superblocks[block / BLOCKS_PER_SUPER] as usize
            + self.blocks[block] as usize
            + popcount_words(&self.words[block * WORDS_PER_BLOCK..word_index]) as usize;
        let bit = i % 64;
        if bit > 0 && word_index < self.words.len() {
            count += (self.words[word_index] & ((1u64 << bit) - 1)).count_ones() as usize;
        }
        count
    }

    /// Total number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones as usize
    }

    /// The raw bit words (serialization support; the rank directories are
    /// rebuilt from them via [`RankBitVec::from_words`], not stored).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Approximate heap footprint in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.words.len() * 8 + self.superblocks.len() * 4 + self.blocks.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank(bits: &[bool], i: usize) -> usize {
        bits[..i].iter().filter(|&&b| b).count()
    }

    #[test]
    fn rank_matches_naive_small() {
        let bits = vec![true, false, true, true, false, false, true];
        let bv = RankBitVec::from_bits(bits.iter().copied());
        for i in 0..=bits.len() {
            assert_eq!(bv.rank1(i), naive_rank(&bits, i));
        }
        assert_eq!(bv.count_ones(), 4);
    }

    #[test]
    fn rank_matches_naive_across_blocks_and_superblocks() {
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            state >> 40
        };
        let bits: Vec<bool> = (0..SUPER_BITS * 2 + BLOCK_BITS * 3 + 100)
            .map(|_| next() % 3 == 0)
            .collect();
        let bv = RankBitVec::from_bits(bits.iter().copied());
        for i in (0..=bits.len()).step_by(37) {
            assert_eq!(bv.rank1(i), naive_rank(&bits, i), "i = {i}");
        }
        // Exactly at block and superblock boundaries.
        for b in 0..=bits.len() / BLOCK_BITS {
            let i = (b * BLOCK_BITS).min(bits.len());
            assert_eq!(bv.rank1(i), naive_rank(&bits, i), "boundary {i}");
        }
        assert_eq!(bv.rank1(bits.len()), naive_rank(&bits, bits.len()));
    }

    #[test]
    fn get_round_trips() {
        let bits: Vec<bool> = (0..200).map(|i| i % 5 == 0).collect();
        let bv = RankBitVec::from_bits(bits.iter().copied());
        for (i, &bit) in bits.iter().enumerate() {
            assert_eq!(bv.get(i), bit);
        }
        assert_eq!(bv.len(), 200);
        assert!(!bv.is_empty());
    }

    #[test]
    fn empty_vector() {
        let bv = RankBitVec::from_bits(std::iter::empty());
        assert!(bv.is_empty());
        assert_eq!(bv.rank1(0), 0);
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let ones = RankBitVec::from_bits((0..10_000).map(|_| true));
        assert_eq!(ones.rank1(10_000), 10_000);
        assert_eq!(ones.rank1(513), 513);
        assert_eq!(ones.rank1(SUPER_BITS + 1), SUPER_BITS + 1);
        assert_eq!(ones.count_ones(), 10_000);
        let zeros = RankBitVec::from_bits((0..10_000).map(|_| false));
        assert_eq!(zeros.rank1(10_000), 0);
    }
}
