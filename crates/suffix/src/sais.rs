//! Linear-time suffix array construction (SA-IS).
//!
//! The suffix array of Section 2.3 is built with the induced-sorting
//! algorithm of Nong, Zhang and Chan.  The implementation works on `u32`
//! "virtual" texts so it can recurse on reduced problems regardless of the
//! original alphabet size; the public entry point [`suffix_array`] accepts a
//! byte text *without* a sentinel and appends the implicit smallest suffix
//! itself (the returned array has length `text.len() + 1` and its first entry
//! is always `text.len()`, the empty suffix, matching the `$`-terminated
//! convention of the paper).

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of suffix-array constructions.
///
/// Exists so the persistence tests can prove that opening a saved index
/// performs **no** build work: the counter must not move across
/// `IndexedDatabase::open`.
static SA_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Number of suffix-array constructions performed by this process so far.
pub fn suffix_array_build_count() -> u64 {
    SA_BUILDS.load(Ordering::Relaxed)
}

/// Build the suffix array of `text ⊕ $` where `$` is an implicit sentinel
/// strictly smaller than every byte value.
///
/// The result `sa` has length `text.len() + 1`; `sa[i]` is the starting
/// position (0-based) of the i-th lexicographically smallest suffix,
/// `sa[0] == text.len()` is the empty suffix.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    assert!(
        text.len() < u32::MAX as usize - 2,
        "text too long for u32 suffix array"
    );
    SA_BUILDS.fetch_add(1, Ordering::Relaxed);
    // Shift bytes up by one so value 0 is free for the sentinel.
    let mut shifted: Vec<u32> = Vec::with_capacity(text.len() + 1);
    shifted.extend(text.iter().map(|&b| b as u32 + 1));
    shifted.push(0);
    let mut sa = vec![0u32; shifted.len()];
    sais_u32(&shifted, &mut sa, 257);
    sa
}

/// Naive O(n² log n) suffix array used as a cross-check in tests and for very
/// small inputs.
pub fn suffix_array_naive(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    let mut sa: Vec<u32> = (0..=n as u32).collect();
    sa.sort_by(|&a, &b| {
        let sa_suffix = &text[a as usize..];
        let sb_suffix = &text[b as usize..];
        sa_suffix.cmp(sb_suffix)
    });
    sa
}

const S_TYPE: bool = true;
const L_TYPE: bool = false;

/// Core SA-IS on a u32 text whose last element is the unique smallest value 0.
fn sais_u32(text: &[u32], sa: &mut [u32], alphabet_size: usize) {
    let n = text.len();
    debug_assert_eq!(sa.len(), n);
    if n == 0 {
        return;
    }
    if n == 1 {
        sa[0] = 0;
        return;
    }
    if n == 2 {
        // Last element is the sentinel (smallest), so suffix 1 < suffix 0.
        sa[0] = 1;
        sa[1] = 0;
        return;
    }

    // 1. Classify suffixes as S-type or L-type.
    let mut types = vec![S_TYPE; n];
    for i in (0..n - 1).rev() {
        types[i] = if text[i] < text[i + 1] {
            S_TYPE
        } else if text[i] > text[i + 1] {
            L_TYPE
        } else {
            types[i + 1]
        };
    }

    let is_lms = |i: usize, types: &[bool]| -> bool {
        i > 0 && types[i] == S_TYPE && types[i - 1] == L_TYPE
    };

    // 2. Bucket sizes.
    let mut bucket_sizes = vec![0u32; alphabet_size];
    for &c in text {
        bucket_sizes[c as usize] += 1;
    }
    let bucket_heads = |sizes: &[u32]| -> Vec<u32> {
        let mut heads = vec![0u32; sizes.len()];
        let mut sum = 0;
        for (i, &s) in sizes.iter().enumerate() {
            heads[i] = sum;
            sum += s;
        }
        heads
    };
    let bucket_tails = |sizes: &[u32]| -> Vec<u32> {
        let mut tails = vec![0u32; sizes.len()];
        let mut sum = 0;
        for (i, &s) in sizes.iter().enumerate() {
            sum += s;
            tails[i] = sum;
        }
        tails
    };

    const EMPTY: u32 = u32::MAX;

    // Induced sort given positions of LMS suffixes (in any relative order
    // placed at bucket tails).
    let induce = |sa: &mut [u32], lms_positions: &[u32], types: &[bool]| {
        for slot in sa.iter_mut() {
            *slot = EMPTY;
        }
        // Place LMS suffixes at the ends of their buckets, in the given order
        // (reversed so that earlier entries end up closer to the tail).
        let mut tails = bucket_tails(&bucket_sizes);
        for &p in lms_positions.iter().rev() {
            let c = text[p as usize] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = p;
        }
        // Induce L-type suffixes left to right.
        let mut heads = bucket_heads(&bucket_sizes);
        for i in 0..n {
            let p = sa[i];
            if p == EMPTY || p == 0 {
                continue;
            }
            let j = p as usize - 1;
            if types[j] == L_TYPE {
                let c = text[j] as usize;
                sa[heads[c] as usize] = j as u32;
                heads[c] += 1;
            }
        }
        // Induce S-type suffixes right to left.
        let mut tails = bucket_tails(&bucket_sizes);
        for i in (0..n).rev() {
            let p = sa[i];
            if p == EMPTY || p == 0 {
                continue;
            }
            let j = p as usize - 1;
            if types[j] == S_TYPE {
                let c = text[j] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = j as u32;
            }
        }
    };

    // 3. Collect LMS positions in text order.
    let lms_positions: Vec<u32> = (1..n)
        .filter(|&i| is_lms(i, &types))
        .map(|i| i as u32)
        .collect();

    // 4. First induced sort to order LMS substrings.
    induce(sa, &lms_positions, &types);

    // 5. Extract LMS suffixes in their induced order and name LMS substrings.
    let sorted_lms: Vec<u32> = sa
        .iter()
        .copied()
        .filter(|&p| p != EMPTY && is_lms(p as usize, &types))
        .collect();

    // Name each LMS substring; equal substrings get equal names.
    let mut names = vec![EMPTY; n];
    let mut current_name: u32 = 0;
    let mut prev: Option<u32> = None;
    let lms_substring_end = |start: usize, types: &[bool]| -> usize {
        // The LMS substring runs from one LMS position to the next
        // (inclusive); the final sentinel position is its own substring.
        if start == n - 1 {
            return n - 1;
        }
        let mut j = start + 1;
        while j < n && !is_lms(j, types) {
            j += 1;
        }
        j.min(n - 1)
    };
    for &p in &sorted_lms {
        let p = p as usize;
        let equal_to_prev = match prev {
            None => false,
            Some(q) => {
                let q = q as usize;
                let p_end = lms_substring_end(p, &types);
                let q_end = lms_substring_end(q, &types);
                p_end - p == q_end - q && text[p..=p_end] == text[q..=q_end]
            }
        };
        if !equal_to_prev {
            current_name += 1;
        }
        names[p] = current_name - 1;
        prev = Some(p as u32);
    }

    // 6. Build the reduced problem (names of LMS substrings in text order).
    let reduced: Vec<u32> = lms_positions.iter().map(|&p| names[p as usize]).collect();
    let reduced_alphabet = current_name as usize;

    let lms_order: Vec<u32> = if reduced_alphabet == reduced.len() {
        // All names distinct: order is directly derivable.
        let mut order = vec![0u32; reduced.len()];
        for (i, &name) in reduced.iter().enumerate() {
            order[name as usize] = lms_positions[i];
        }
        order
    } else {
        // Recurse on the reduced text.
        let mut reduced_sa = vec![0u32; reduced.len()];
        sais_u32(&reduced, &mut reduced_sa, reduced_alphabet);
        reduced_sa
            .iter()
            .map(|&ri| lms_positions[ri as usize])
            .collect()
    };

    // 7. Final induced sort with correctly ordered LMS suffixes.
    induce(sa, &lms_order, &types);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(text: &[u8]) {
        let fast = suffix_array(text);
        let naive = suffix_array_naive(text);
        assert_eq!(fast, naive, "mismatch for text {:?}", text);
    }

    #[test]
    fn paper_example_gctagc() {
        // Section 2.3: SA of GCTAGC$ is {7, 4, 6, 2, 5, 1, 3} in 1-based
        // terms, i.e. {6, 3, 5, 1, 4, 0, 2} 0-based.
        let sa = suffix_array(b"GCTAGC");
        assert_eq!(sa, vec![6, 3, 5, 1, 4, 0, 2]);
    }

    #[test]
    fn small_texts_match_naive() {
        check(b"");
        check(b"A");
        check(b"AAAA");
        check(b"ABAB");
        check(b"BANANA");
        check(b"MISSISSIPPI");
        check(b"GCTAGCTAGGCATCGATCG");
        check(b"ACGTACGTACGTACGT");
    }

    #[test]
    fn texts_with_runs_and_repeats() {
        check(b"AAAAAAAAAAB");
        check(b"BAAAAAAAAAA");
        check(b"ABCABCABCABCABC");
        check(b"ZYXWVUTSRQPONMLKJIHGFEDCBA");
        check(b"ABRACADABRAABRACADABRA");
    }

    #[test]
    fn encoded_dna_codes_work() {
        // Codes 1..=4 as produced by alae-bioseq, including separator 0 in
        // the middle (multi-record database text).
        let text = [1u8, 2, 3, 4, 0, 4, 3, 2, 1, 1, 2, 3];
        check(&text);
    }

    #[test]
    fn random_texts_match_naive() {
        // Deterministic xorshift so the test is reproducible without rand.
        let mut state = 0x12345678u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [10usize, 50, 200, 500] {
            for sigma in [2u8, 4, 20] {
                let text: Vec<u8> = (0..len)
                    .map(|_| (next() % sigma as u64) as u8 + 1)
                    .collect();
                check(&text);
            }
        }
    }

    #[test]
    fn suffix_array_is_a_permutation() {
        let text = b"GATTACAGATTACAGATTACA";
        let sa = suffix_array(text);
        let mut seen = vec![false; text.len() + 1];
        for &p in &sa {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn suffixes_are_sorted() {
        let text = b"TGCATGCATGCAACGT";
        let sa = suffix_array(text);
        for window in sa.windows(2) {
            let a = &text[window[0] as usize..];
            let b = &text[window[1] as usize..];
            assert!(a < b, "suffix order violated: {:?} !< {:?}", a, b);
        }
    }
}
