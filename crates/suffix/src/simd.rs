//! Hardware-parallel occurrence-layer scan kernels with runtime dispatch.
//!
//! Every in-block scan of the occurrence table ([`crate::rank`]) bottoms out
//! in one of six kernels: byte equality count and byte histogram (the
//! [`crate::rank::RankLayout::Bytes`] layout), 2-bit pattern count and 2-bit
//! histogram ([`crate::rank::RankLayout::PackedDna`]), and 4-bit (nibble)
//! pattern count and histogram ([`crate::rank::RankLayout::PackedNibble`]).
//! This module owns all six, in up to three implementations each:
//!
//! * **SWAR** — the portable `u64` bit-parallel fallback (equality folds +
//!   `count_ones`), available everywhere and the reference the SIMD paths
//!   are proven bit-exact against.
//! * **SSE2** — 128-bit `std::arch` kernels.  SSE2 is part of the x86-64
//!   baseline, so this path needs no runtime detection.
//! * **AVX2** — 256-bit kernels selected at runtime via
//!   `is_x86_feature_detected!("avx2")`.
//!
//! # Backend selection
//!
//! Callers pick a [`ScanBackend`] (`Auto` / `Swar` / `Simd`); construction
//! resolves it once to an [`ActiveBackend`] (`Swar` / `Sse2` / `Avx2`) and
//! the per-query dispatch is a plain enum match — no per-call feature
//! detection.  The process-wide default comes from the `ALAE_SCAN_BACKEND`
//! environment variable (`auto` | `swar` | `simd`); tests and benchmarks
//! force a backend per table through the `with_scan_backend` constructors
//! ([`crate::rank::OccTable::with_backend`],
//! [`crate::trie::TextIndex::with_scan_backend`]).  Building with the
//! `force-swar` cargo feature compiles the SIMD paths out entirely, so
//! `Auto`/`Simd` resolve to SWAR — the CI matrix leg that proves the
//! dispatch layer is load-bearing.
//!
//! Every kernel handles the partial tail of a scan (fewer characters than
//! one SIMD chunk) by cascading to the next narrower implementation —
//! AVX2 → SSE2 → SWAR — so results are exact for every prefix length, not
//! just chunk multiples.
//!
//! This is the only module in the workspace allowed to use `unsafe` (the
//! `std::arch` intrinsics and the `u64`→byte reinterpretation the nibble
//! kernels need); the crate root carries `#![deny(unsafe_code)]` and CI
//! greps for strays.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Requested scan backend: how the in-block kernels should be implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanBackend {
    /// Use the widest instruction set the CPU supports (the default).
    #[default]
    Auto,
    /// Force the portable SWAR (`u64` bit-parallel) kernels.
    Swar,
    /// Force the SIMD kernels (resolves to AVX2 when detected, else SSE2 on
    /// x86-64; falls back to SWAR elsewhere or under `force-swar`).
    Simd,
}

/// The implementation actually selected after CPU-feature detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActiveBackend {
    /// Portable `u64` bit-parallel kernels.
    Swar,
    /// 128-bit SSE2 kernels (x86-64 baseline).
    Sse2,
    /// 256-bit AVX2 kernels (runtime-detected).
    Avx2,
}

impl ActiveBackend {
    /// Lower-case display name (`"swar"` / `"sse2"` / `"avx2"`), the form
    /// recorded in `BENCH_rank.json`.
    pub fn name(self) -> &'static str {
        match self {
            ActiveBackend::Swar => "swar",
            ActiveBackend::Sse2 => "sse2",
            ActiveBackend::Avx2 => "avx2",
        }
    }

    /// True when this backend runs vector kernels (not the SWAR fallback).
    pub fn is_simd(self) -> bool {
        !matches!(self, ActiveBackend::Swar)
    }
}

impl std::fmt::Display for ActiveBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl ScanBackend {
    /// Resolve the request against the running CPU (cached after the first
    /// call; dispatch afterwards is a plain enum match).
    pub fn resolve(self) -> ActiveBackend {
        match self {
            ScanBackend::Swar => ActiveBackend::Swar,
            ScanBackend::Auto | ScanBackend::Simd => best_available(),
        }
    }
}

/// The widest backend the build and the CPU support.
fn best_available() -> ActiveBackend {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
    {
        static BEST: OnceLock<ActiveBackend> = OnceLock::new();
        *BEST.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx2") {
                ActiveBackend::Avx2
            } else {
                ActiveBackend::Sse2
            }
        })
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "force-swar"))))]
    {
        ActiveBackend::Swar
    }
}

/// The process-wide default [`ScanBackend`], read once from the
/// `ALAE_SCAN_BACKEND` environment variable (`auto` | `swar` | `simd`,
/// case-insensitive; unset or unrecognized values mean `Auto`).
pub fn default_backend() -> ScanBackend {
    static FROM_ENV: OnceLock<ScanBackend> = OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("ALAE_SCAN_BACKEND") {
        Ok(value) => match value.trim().to_ascii_lowercase().as_str() {
            "swar" => ScanBackend::Swar,
            "simd" => ScanBackend::Simd,
            "auto" | "" => ScanBackend::Auto,
            other => {
                eprintln!(
                    "warning: unrecognized ALAE_SCAN_BACKEND value {other:?} \
                     (expected auto|swar|simd); using auto"
                );
                ScanBackend::Auto
            }
        },
        Err(_) => ScanBackend::Auto,
    })
}

// ---------------------------------------------------------------------------
// Shared word geometry (used by the rank layouts and every kernel).
// ---------------------------------------------------------------------------

/// Characters per `u64` in the 2-bit packed layout.
pub(crate) const CHARS_PER_WORD: usize = 32;

/// Characters per `u64` in the 4-bit nibble layout.
pub(crate) const NIBBLE_CHARS_PER_WORD: usize = 16;

/// Low bit of every 2-bit group.
pub(crate) const GROUP_LOW_BITS: u64 = 0x5555_5555_5555_5555;

/// Low bit of every nibble.
pub(crate) const NIBBLE_LOW_BITS: u64 = 0x1111_1111_1111_1111;

/// Low bit of every byte.
const BYTE_LOW_BITS: u64 = 0x0101_0101_0101_0101;

// ---------------------------------------------------------------------------
// Dispatch wrappers (the only entry points the rank layer calls).
// ---------------------------------------------------------------------------

/// Number of bytes of `data` equal to `c`.
#[inline]
pub(crate) fn count_eq_bytes(data: &[u8], c: u8, backend: ActiveBackend) -> usize {
    match backend {
        ActiveBackend::Swar => count_eq_bytes_swar(data, c),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        ActiveBackend::Sse2 => x86::count_eq_bytes_sse2(data, c),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        // SAFETY: `ActiveBackend::Avx2` is only ever produced by
        // `best_available` after `is_x86_feature_detected!("avx2")`.
        ActiveBackend::Avx2 => unsafe { x86::count_eq_bytes_avx2(data, c) },
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-swar"))))]
        _ => count_eq_bytes_swar(data, c),
    }
}

/// Alphabet-size cutoff for the byte-histogram bit-plane tree.
///
/// The AND-tree costs one popcnt per possible value, so its profit shrinks
/// as the alphabet grows: measured on AVX2 hardware it is ~1.4× the scalar
/// pass for `σ ≤ 16` (two octet subtrees) but loses to the scalar
/// histogram's ~2 cycles/byte at the full protein `σ = 22` (three subtrees,
/// 24 port-limited popcnts).  Above the cutoff every backend runs the
/// scalar pass — the dispatch layer's job is the fastest known kernel per
/// shape, not vector code at any price.
const BYTE_TREE_MAX_CODES: usize = 16;

/// Prefix-length cutoff below which the scalar byte histogram wins (the
/// plane tree's fixed extraction + tree cost does not amortize).
const BYTE_TREE_MIN_LEN: usize = 32;

/// Byte histogram of the prefix `data[start..end]`: `counts[b] += 1` for
/// every byte `b` of the prefix (all bytes must be `< counts.len()`, and
/// `counts.len() ≤ 32`).
///
/// The kernel may *read* any in-bounds byte of `data` at or beyond `start`
/// (the SIMD paths load whole 16/32-byte chunks and mask the lanes beyond
/// `end` out of the counts), but only the prefix is ever counted.
#[inline]
pub(crate) fn byte_histogram_prefix(
    data: &[u8],
    start: usize,
    end: usize,
    counts: &mut [u32],
    backend: ActiveBackend,
) {
    debug_assert!(counts.len() <= 32);
    // Decided here, before the (non-inlinable) `target_feature` boundary,
    // so the common wide-alphabet and short-prefix cases pay no extra call.
    if counts.len() > BYTE_TREE_MAX_CODES || end - start < BYTE_TREE_MIN_LEN {
        return byte_histogram_swar(&data[start..end], counts);
    }
    match backend {
        ActiveBackend::Swar => byte_histogram_swar(&data[start..end], counts),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        ActiveBackend::Sse2 => x86::byte_histogram_prefix_sse2(data, start, end, counts),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        // SAFETY: `Avx2` implies runtime AVX2 detection (see above).
        ActiveBackend::Avx2 => unsafe { x86::byte_histogram_prefix_avx2(data, start, end, counts) },
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-swar"))))]
        _ => byte_histogram_swar(&data[start..end], counts),
    }
}

/// Occurrences of the 2-bit `pattern` in character positions `[start, end)`
/// of the packed `words`; `start` must be a multiple of [`CHARS_PER_WORD`].
#[inline]
pub(crate) fn count_pattern_2bit(
    words: &[u64],
    pattern: u64,
    start: usize,
    end: usize,
    backend: ActiveBackend,
) -> usize {
    debug_assert_eq!(start % CHARS_PER_WORD, 0);
    match backend {
        ActiveBackend::Swar => count_pattern_2bit_swar(words, pattern, start, end),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        ActiveBackend::Sse2 => x86::count_pattern_2bit_sse2(words, pattern, start, end),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        // SAFETY: `Avx2` implies runtime AVX2 detection (see above).
        ActiveBackend::Avx2 => unsafe { x86::count_pattern_2bit_avx2(words, pattern, start, end) },
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-swar"))))]
        _ => count_pattern_2bit_swar(words, pattern, start, end),
    }
}

/// Histogram of all four 2-bit patterns over `[start, end)`; `start` must be
/// a multiple of [`CHARS_PER_WORD`].
#[inline]
pub(crate) fn count_all_2bit(
    words: &[u64],
    start: usize,
    end: usize,
    out: &mut [u32; 4],
    backend: ActiveBackend,
) {
    debug_assert_eq!(start % CHARS_PER_WORD, 0);
    match backend {
        ActiveBackend::Swar => count_all_2bit_swar(words, start, end, out),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        ActiveBackend::Sse2 => x86::count_all_2bit_sse2(words, start, end, out),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        // SAFETY: `Avx2` implies runtime AVX2 detection (see above).
        ActiveBackend::Avx2 => unsafe { x86::count_all_2bit_avx2(words, start, end, out) },
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-swar"))))]
        _ => count_all_2bit_swar(words, start, end, out),
    }
}

/// Occurrences of the 4-bit `pattern` in nibble positions `[start, end)` of
/// the packed `words`; `start` must be a multiple of
/// [`NIBBLE_CHARS_PER_WORD`].
#[inline]
pub(crate) fn count_pattern_nibble(
    words: &[u64],
    pattern: u64,
    start: usize,
    end: usize,
    backend: ActiveBackend,
) -> usize {
    debug_assert_eq!(start % NIBBLE_CHARS_PER_WORD, 0);
    match backend {
        ActiveBackend::Swar => count_pattern_nibble_swar(words, pattern, start, end),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        ActiveBackend::Sse2 => x86::count_pattern_nibble_sse2(words, pattern, start, end),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        // SAFETY: `Avx2` implies runtime AVX2 detection (see above).
        ActiveBackend::Avx2 => unsafe {
            x86::count_pattern_nibble_avx2(words, pattern, start, end)
        },
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-swar"))))]
        _ => count_pattern_nibble_swar(words, pattern, start, end),
    }
}

/// Nibble histogram over `[start, end)`: `out[p] += 1` for every nibble
/// value `p` (every stored nibble must be `< out.len()`); `start` must be a
/// multiple of [`NIBBLE_CHARS_PER_WORD`].
#[inline]
pub(crate) fn nibble_histogram_into(
    words: &[u64],
    start: usize,
    end: usize,
    out: &mut [u32],
    backend: ActiveBackend,
) {
    debug_assert_eq!(start % NIBBLE_CHARS_PER_WORD, 0);
    match backend {
        ActiveBackend::Swar => nibble_histogram_swar(words, start, end, out),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        ActiveBackend::Sse2 => x86::nibble_histogram_sse2(words, start, end, out),
        #[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
        // SAFETY: `Avx2` implies runtime AVX2 detection (see above).
        ActiveBackend::Avx2 => unsafe { x86::nibble_histogram_avx2(words, start, end, out) },
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-swar"))))]
        _ => nibble_histogram_swar(words, start, end, out),
    }
}

/// Total set bits across `words`.
///
/// Deliberately scalar on every backend: below AVX-512 `VPOPCNTDQ` a vector
/// population count must emulate with shuffles, which loses to one hardware
/// `popcnt` per word on the ≤ 8-word spans the rank bit-vector scans.
/// Centralized here so the bit-vector shares the kernel module's single
/// point of truth (and upgrades for free if a wider popcount ever pays off).
#[inline]
pub(crate) fn popcount_words(words: &[u64]) -> u32 {
    words.iter().map(|w| w.count_ones()).sum()
}

// ---------------------------------------------------------------------------
// SWAR kernels (portable fallback and bit-exactness reference).
// ---------------------------------------------------------------------------

/// Low-bit-per-group equality mask: bit `2k` set iff 2-bit group `k` equals
/// `pattern`.
#[inline]
fn eq2(word: u64, pattern: u64) -> u64 {
    let lo = if pattern & 1 != 0 { word } else { !word };
    let hi = if pattern & 2 != 0 {
        word >> 1
    } else {
        !(word >> 1)
    };
    lo & hi & GROUP_LOW_BITS
}

/// Low-bit-per-nibble equality mask: bit `4k` set iff nibble `k` equals
/// `pattern` (`pattern < 16`).
#[inline]
fn eq4(word: u64, pattern: u64) -> u64 {
    // XOR leaves matching nibbles zero; fold each nibble onto its low bit
    // (all folds stay inside the nibble, so this is exact).
    let x = word ^ (pattern * NIBBLE_LOW_BITS);
    let mut folded = x | (x >> 2);
    folded |= folded >> 1;
    !folded & NIBBLE_LOW_BITS
}

/// Mask selecting the first `rem` 2-bit groups of a word.
#[inline]
fn group_mask(rem: usize) -> u64 {
    let groups = if rem >= CHARS_PER_WORD {
        !0
    } else {
        (1u64 << (2 * rem)) - 1
    };
    groups & GROUP_LOW_BITS
}

/// Mask selecting the first `rem` nibbles of a word.
#[inline]
fn nibble_mask(rem: usize) -> u64 {
    let nibbles = if rem >= NIBBLE_CHARS_PER_WORD {
        !0
    } else {
        (1u64 << (4 * rem)) - 1
    };
    nibbles & NIBBLE_LOW_BITS
}

/// Number of bytes of `data` equal to `c`, eight bytes per SWAR step.
fn count_eq_bytes_swar(data: &[u8], c: u8) -> usize {
    let pattern = u64::from_ne_bytes([c; 8]);
    let mut count = 0usize;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_ne_bytes(chunk.try_into().unwrap());
        let x = word ^ pattern;
        // Fold each byte onto its low bit: low bit set iff the byte is
        // nonzero (all folds stay inside the byte, so this is exact — unlike
        // the borrow-based `haszero` trick, which is only a predicate).
        let mut folded = x | (x >> 4);
        folded |= folded >> 2;
        folded |= folded >> 1;
        count += 8 - (folded & BYTE_LOW_BITS).count_ones() as usize;
    }
    count + chunks.remainder().iter().filter(|&&b| b == c).count()
}

/// Plain byte histogram (one table increment per character).
fn byte_histogram_swar(data: &[u8], counts: &mut [u32]) {
    for &b in data {
        counts[b as usize] += 1;
    }
}

/// Occurrences of the 2-bit `pattern` in `[start, end)`, one word per step.
fn count_pattern_2bit_swar(words: &[u64], pattern: u64, start: usize, end: usize) -> usize {
    let mut count = 0u32;
    let mut pos = start;
    let mut w = start / CHARS_PER_WORD;
    while pos < end {
        let rem = (end - pos).min(CHARS_PER_WORD);
        count += (eq2(words[w], pattern) & group_mask(rem)).count_ones();
        pos += rem;
        w += 1;
    }
    count as usize
}

/// Histogram of all four 2-bit patterns over `[start, end)` in one pass.
fn count_all_2bit_swar(words: &[u64], start: usize, end: usize, out: &mut [u32; 4]) {
    let mut pos = start;
    let mut w = start / CHARS_PER_WORD;
    while pos < end {
        let rem = (end - pos).min(CHARS_PER_WORD);
        let word = words[w];
        let (lo, hi) = (word, word >> 1);
        let mask = group_mask(rem);
        out[0] += (!hi & !lo & mask).count_ones();
        out[1] += (!hi & lo & mask).count_ones();
        out[2] += (hi & !lo & mask).count_ones();
        out[3] += (hi & lo & mask).count_ones();
        pos += rem;
        w += 1;
    }
}

/// Occurrences of the 4-bit `pattern` in `[start, end)`, one word per step.
fn count_pattern_nibble_swar(words: &[u64], pattern: u64, start: usize, end: usize) -> usize {
    let mut count = 0u32;
    let mut pos = start;
    let mut w = start / NIBBLE_CHARS_PER_WORD;
    while pos < end {
        let rem = (end - pos).min(NIBBLE_CHARS_PER_WORD);
        count += (eq4(words[w], pattern) & nibble_mask(rem)).count_ones();
        pos += rem;
        w += 1;
    }
    count as usize
}

/// Nibble histogram over `[start, end)`: each storage word is loaded once
/// and its nibbles shifted out.
fn nibble_histogram_swar(words: &[u64], start: usize, end: usize, out: &mut [u32]) {
    let mut pos = start;
    let mut w = start / NIBBLE_CHARS_PER_WORD;
    while pos < end {
        let rem = (end - pos).min(NIBBLE_CHARS_PER_WORD);
        let mut word = words[w];
        for _ in 0..rem {
            out[(word & 0xF) as usize] += 1;
            word >>= 4;
        }
        pos += rem;
        w += 1;
    }
}

// ---------------------------------------------------------------------------
// Bit-plane AND-trees (shared by the SSE2 and AVX2 histogram kernels).
//
// The SIMD histograms do not count value-by-value: per vector chunk they
// extract one *bit plane* per value bit (a mask word whose bit `j` is bit
// `k` of lane `j`, obtained with a shift + `movemask`), then combine the
// planes through a binary AND-tree — the leaf for value `v` is the mask of
// lanes equal to `v`, and one `popcnt` per leaf yields the histogram.
// Cost is O(2^bits) AND + popcnt operations per span regardless of span
// length, versus one table increment per character for the scalar pass, and
// a span mask ANDed into the tree root confines the counts to the scanned
// prefix, so whole chunks can be loaded without a scalar tail loop.
// `L` is the number of plane words a span needs (1 while the prefix fits one
// word of plane bits, 2 for a full 128-position block).
// ---------------------------------------------------------------------------

/// Expand one depth-3 subtree (8 consecutive values rooted at `base`) of the
/// byte tree over one plane word and add the leaf popcounts into `counts`;
/// skipped entirely when the subtree lies beyond `counts.len()` (values that
/// cannot occur).
#[inline(always)]
fn emit_octet(node: u64, p0: u64, p1: u64, p2: u64, base: usize, counts: &mut [u32]) {
    if base >= counts.len() {
        return;
    }
    let e0 = node & !p2;
    let e1 = node & p2;
    let f00 = e0 & !p1;
    let f01 = e0 & p1;
    let f10 = e1 & !p1;
    let f11 = e1 & p1;
    let leaves = [
        f00 & !p0,
        f00 & p0,
        f01 & !p0,
        f01 & p0,
        f10 & !p0,
        f10 & p0,
        f11 & !p0,
        f11 & p0,
    ];
    for (slot, leaf) in counts.iter_mut().skip(base).zip(leaves) {
        *slot += leaf.count_ones();
    }
}

/// Histogram of 5-bit values (bytes `< 32`) from the bit planes of one
/// 64-position span: `p[k]` holds bit `k` of every position, `span` selects
/// the positions to count.
#[inline(always)]
fn byte_plane_tree(p: &[u64; 5], span: u64, counts: &mut [u32]) {
    let low = span & !p[4];
    emit_octet(low & !p[3], p[0], p[1], p[2], 0, counts);
    emit_octet(low & p[3], p[0], p[1], p[2], 8, counts);
    if counts.len() > 16 {
        let high = span & p[4];
        emit_octet(high & !p[3], p[0], p[1], p[2], 16, counts);
        emit_octet(high & p[3], p[0], p[1], p[2], 24, counts);
    }
}

/// Histogram of 4-bit values (nibbles) from the bit planes of one
/// 64-position span.
#[inline(always)]
fn nibble_plane_tree(p: &[u64; 4], span: u64, out: &mut [u32]) {
    let n0 = span & !p[3];
    let n1 = span & p[3];
    let quads = [n0 & !p[2], n0 & p[2], n1 & !p[2], n1 & p[2]];
    for (q, node) in quads.into_iter().enumerate() {
        let base = 4 * q;
        if base >= out.len() {
            return;
        }
        let e0 = node & !p[1];
        let e1 = node & p[1];
        let leaves = [e0 & !p[0], e0 & p[0], e1 & !p[0], e1 & p[0]];
        for (slot, leaf) in out.iter_mut().skip(base).zip(leaves) {
            *slot += leaf.count_ones();
        }
    }
}

/// The lowest `n` bits set (`n ≤ 64`).
#[inline(always)]
fn low_bits(n: u64) -> u64 {
    if n >= 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

// ---------------------------------------------------------------------------
// x86-64 SIMD kernels.
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", not(feature = "force-swar")))]
mod x86 {
    //! SSE2 (baseline, no detection needed) and AVX2 (runtime-detected)
    //! implementations.  Each kernel consumes whole vector chunks and
    //! cascades the tail to the next narrower implementation, so results are
    //! exact for every prefix length.
    //!
    //! The nibble and 2-bit kernels reinterpret the `u64` storage words as
    //! bytes; the packed layouts are little-endian within each word, which
    //! matches x86-64's memory order (byte `j` of a word holds nibbles
    //! `2j`/`2j+1` and 2-bit groups `4j..4j+4`), so a byte-wise vector load
    //! sees the characters in storage order.

    use super::{
        byte_histogram_swar, byte_plane_tree, count_all_2bit_swar, count_eq_bytes_swar,
        count_pattern_2bit_swar, count_pattern_nibble_swar, low_bits, nibble_histogram_swar,
        nibble_plane_tree, CHARS_PER_WORD, GROUP_LOW_BITS,
    };
    use std::arch::x86_64::*;

    /// Nibbles per 256-bit chunk (32 bytes).
    const NIBBLES_PER_AVX2: usize = 64;
    /// Nibbles per 128-bit chunk (16 bytes).
    const NIBBLES_PER_SSE2: usize = 32;
    /// 2-bit characters per 256-bit chunk (4 words).
    const CHARS_PER_AVX2: usize = 4 * CHARS_PER_WORD;
    /// 2-bit characters per 128-bit chunk (2 words).
    const CHARS_PER_SSE2: usize = 2 * CHARS_PER_WORD;

    /// The packed words viewed as bytes (storage order; see module docs).
    #[inline]
    fn words_as_bytes(words: &[u64]) -> &[u8] {
        // SAFETY: u8 has no alignment or validity requirements and the view
        // covers exactly the words' allocation.
        unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8) }
    }

    /// Population count of a 128-bit register via two scalar `popcnt`s.
    #[inline]
    fn popcount128(v: __m128i) -> u32 {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe {
            let lo = _mm_cvtsi128_si64(v) as u64;
            let hi = _mm_cvtsi128_si64(_mm_srli_si128(v, 8)) as u64;
            lo.count_ones() + hi.count_ones()
        }
    }

    /// Population count of a 256-bit register.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn popcount256(v: __m256i) -> u32 {
        popcount128(_mm256_castsi256_si128(v)) + popcount128(_mm256_extracti128_si256(v, 1))
    }

    // -- byte layout --------------------------------------------------------

    /// [`super::count_eq_bytes`], 16 bytes per step.
    pub fn count_eq_bytes_sse2(data: &[u8], c: u8) -> usize {
        let mut count = 0u32;
        let mut chunks = data.chunks_exact(16);
        // SAFETY: SSE2 is part of the x86-64 baseline; every load reads 16
        // in-bounds bytes of the chunk.
        unsafe {
            let needle = _mm_set1_epi8(c as i8);
            for chunk in &mut chunks {
                let v = _mm_loadu_si128(chunk.as_ptr().cast());
                let eq = _mm_cmpeq_epi8(v, needle);
                count += (_mm_movemask_epi8(eq) as u32).count_ones();
            }
        }
        count as usize + count_eq_bytes_swar(chunks.remainder(), c)
    }

    /// [`super::count_eq_bytes`], 32 bytes per step.
    #[target_feature(enable = "avx2")]
    pub fn count_eq_bytes_avx2(data: &[u8], c: u8) -> usize {
        let mut count = 0u32;
        let mut chunks = data.chunks_exact(32);
        let needle = _mm256_set1_epi8(c as i8);
        for chunk in &mut chunks {
            // SAFETY: the load reads 32 in-bounds bytes of the chunk.
            let v = unsafe { _mm256_loadu_si256(chunk.as_ptr().cast()) };
            let eq = _mm256_cmpeq_epi8(v, needle);
            count += (_mm256_movemask_epi8(eq) as u32).count_ones();
        }
        count as usize + count_eq_bytes_sse2(chunks.remainder(), c)
    }

    /// [`super::byte_histogram_prefix`] via bit planes, 16 bytes per chunk
    /// (plane segments of 16 bits, four chunks packed per plane word).
    /// The alphabet/length cutoffs were applied by the dispatcher; only the
    /// block-shorter-than-one-chunk case (end of text) bails here.
    pub fn byte_histogram_prefix_sse2(data: &[u8], start: usize, end: usize, counts: &mut [u32]) {
        let len = end - start;
        let block = &data[start..];
        if block.len() < 16 {
            return byte_histogram_swar(&block[..len], counts);
        }
        let vec_len = len.min(block.len() / 16 * 16);
        let chunk_count = vec_len.div_ceil(16).min(2 * PLANE_CHUNKS_SSE2);
        let mut planes = [[0u64; 2]; 5];
        // SAFETY: SSE2 baseline; chunk `ci` starts below `vec_len ≤
        // block.len()` rounded down to a chunk multiple, so each load reads
        // 16 in-bounds bytes.
        unsafe {
            for ci in 0..chunk_count {
                let v = _mm_loadu_si128(block.as_ptr().add(ci * 16).cast());
                let (w, sh) = (ci / PLANE_CHUNKS_SSE2, 16 * (ci % PLANE_CHUNKS_SSE2));
                planes[0][w] |= ((_mm_movemask_epi8(_mm_slli_epi16(v, 7)) as u16) as u64) << sh;
                planes[1][w] |= ((_mm_movemask_epi8(_mm_slli_epi16(v, 6)) as u16) as u64) << sh;
                planes[2][w] |= ((_mm_movemask_epi8(_mm_slli_epi16(v, 5)) as u16) as u64) << sh;
                planes[3][w] |= ((_mm_movemask_epi8(_mm_slli_epi16(v, 4)) as u16) as u64) << sh;
                planes[4][w] |= ((_mm_movemask_epi8(_mm_slli_epi16(v, 3)) as u16) as u64) << sh;
            }
        }
        let covered = (chunk_count * 16).min(vec_len);
        run_byte_tree(&planes, covered, counts);
        byte_histogram_swar(&block[covered..len], counts);
    }

    /// [`super::byte_histogram_prefix`] via bit planes, 32 bytes per chunk.
    #[target_feature(enable = "avx2")]
    pub fn byte_histogram_prefix_avx2(data: &[u8], start: usize, end: usize, counts: &mut [u32]) {
        let len = end - start;
        let block = &data[start..];
        if block.len() < 32 {
            return byte_histogram_prefix_sse2(data, start, end, counts);
        }
        let vec_len = len.min(block.len() / 32 * 32);
        let chunk_count = vec_len.div_ceil(32).min(2 * PLANE_CHUNKS_AVX2);
        let mut planes = [[0u64; 2]; 5];
        for ci in 0..chunk_count {
            // SAFETY: chunk `ci` starts below `vec_len ≤ block.len()`
            // rounded down to a chunk multiple, so the load reads 32
            // in-bounds bytes.
            let v = unsafe { _mm256_loadu_si256(block.as_ptr().add(ci * 32).cast()) };
            let (w, sh) = (ci / PLANE_CHUNKS_AVX2, 32 * (ci % PLANE_CHUNKS_AVX2));
            planes[0][w] |= ((_mm256_movemask_epi8(_mm256_slli_epi16(v, 7)) as u32) as u64) << sh;
            planes[1][w] |= ((_mm256_movemask_epi8(_mm256_slli_epi16(v, 6)) as u32) as u64) << sh;
            planes[2][w] |= ((_mm256_movemask_epi8(_mm256_slli_epi16(v, 5)) as u32) as u64) << sh;
            planes[3][w] |= ((_mm256_movemask_epi8(_mm256_slli_epi16(v, 4)) as u32) as u64) << sh;
            planes[4][w] |= ((_mm256_movemask_epi8(_mm256_slli_epi16(v, 3)) as u32) as u64) << sh;
        }
        let covered = (chunk_count * 32).min(vec_len);
        run_byte_tree(&planes, covered, counts);
        byte_histogram_swar(&block[covered..len], counts);
    }

    /// Chunks per 64-bit plane word (SSE2: 16-bit segments).
    const PLANE_CHUNKS_SSE2: usize = 4;
    /// Chunks per 64-bit plane word (AVX2: 32-bit segments).
    const PLANE_CHUNKS_AVX2: usize = 2;

    /// Run the byte AND-tree over `covered` plane bits: one pass per
    /// 64-position plane word the span touches.
    #[inline]
    fn run_byte_tree(planes: &[[u64; 2]; 5], covered: usize, counts: &mut [u32]) {
        let first: [u64; 5] = std::array::from_fn(|k| planes[k][0]);
        byte_plane_tree(&first, low_bits(covered.min(64) as u64), counts);
        if covered > 64 {
            let second: [u64; 5] = std::array::from_fn(|k| planes[k][1]);
            byte_plane_tree(&second, low_bits(covered as u64 - 64), counts);
        }
    }

    // -- 2-bit packed layout ------------------------------------------------

    /// [`super::count_pattern_2bit`], two words (64 characters) per step.
    pub fn count_pattern_2bit_sse2(words: &[u64], pattern: u64, start: usize, end: usize) -> usize {
        let mut pos = start;
        let mut w = start / CHARS_PER_WORD;
        let mut count = 0u32;
        // SAFETY: SSE2 baseline; each load reads words[w..w + 2], in bounds
        // because `end` characters exist in storage.
        unsafe {
            // eq2 vectorized: lo = word ^ (p&1 ? 0 : !0), hi = (word >> 1)
            // ^ (p&2 ? 0 : !0), mask = lo & hi & GROUP_LOW_BITS.
            let flip_lo = _mm_set1_epi64x(if pattern & 1 != 0 { 0 } else { -1 });
            let flip_hi = _mm_set1_epi64x(if pattern & 2 != 0 { 0 } else { -1 });
            let group = _mm_set1_epi64x(GROUP_LOW_BITS as i64);
            while end - pos >= CHARS_PER_SSE2 {
                let v = _mm_loadu_si128(words.as_ptr().add(w).cast());
                let lo = _mm_xor_si128(v, flip_lo);
                let hi = _mm_xor_si128(_mm_srli_epi64(v, 1), flip_hi);
                let m = _mm_and_si128(_mm_and_si128(lo, hi), group);
                count += popcount128(m);
                pos += CHARS_PER_SSE2;
                w += 2;
            }
        }
        count as usize + count_pattern_2bit_swar(words, pattern, pos, end)
    }

    /// [`super::count_pattern_2bit`], four words (128 characters) per step.
    #[target_feature(enable = "avx2")]
    pub fn count_pattern_2bit_avx2(words: &[u64], pattern: u64, start: usize, end: usize) -> usize {
        let mut pos = start;
        let mut w = start / CHARS_PER_WORD;
        let mut count = 0u32;
        let flip_lo = _mm256_set1_epi64x(if pattern & 1 != 0 { 0 } else { -1 });
        let flip_hi = _mm256_set1_epi64x(if pattern & 2 != 0 { 0 } else { -1 });
        let group = _mm256_set1_epi64x(GROUP_LOW_BITS as i64);
        while end - pos >= CHARS_PER_AVX2 {
            // SAFETY: the load reads words[w..w + 4], in bounds because
            // `end` characters exist in storage.
            let v = unsafe { _mm256_loadu_si256(words.as_ptr().add(w).cast()) };
            let lo = _mm256_xor_si256(v, flip_lo);
            let hi = _mm256_xor_si256(_mm256_srli_epi64(v, 1), flip_hi);
            let m = _mm256_and_si256(_mm256_and_si256(lo, hi), group);
            count += popcount256(m);
            pos += CHARS_PER_AVX2;
            w += 4;
        }
        count as usize + count_pattern_2bit_sse2(words, pattern, pos, end)
    }

    /// [`super::count_all_2bit`], two words per step: the four pattern masks
    /// share one load and the lo/hi planes.
    pub fn count_all_2bit_sse2(words: &[u64], start: usize, end: usize, out: &mut [u32; 4]) {
        let mut pos = start;
        let mut w = start / CHARS_PER_WORD;
        // SAFETY: SSE2 baseline; each load reads words[w..w + 2] in bounds.
        unsafe {
            let group = _mm_set1_epi64x(GROUP_LOW_BITS as i64);
            while end - pos >= CHARS_PER_SSE2 {
                let v = _mm_loadu_si128(words.as_ptr().add(w).cast());
                let lo = v;
                let hi = _mm_srli_epi64(v, 1);
                let lo_g = _mm_and_si128(lo, group);
                let hi_g = _mm_and_si128(hi, group);
                // andnot(a, b) = !a & b.
                out[0] += popcount128(_mm_andnot_si128(hi, _mm_andnot_si128(lo, group)));
                out[1] += popcount128(_mm_andnot_si128(hi, lo_g));
                out[2] += popcount128(_mm_andnot_si128(lo, hi_g));
                out[3] += popcount128(_mm_and_si128(hi_g, lo));
                pos += CHARS_PER_SSE2;
                w += 2;
            }
        }
        count_all_2bit_swar(words, pos, end, out);
    }

    /// [`super::count_all_2bit`], four words per step.
    #[target_feature(enable = "avx2")]
    pub fn count_all_2bit_avx2(words: &[u64], start: usize, end: usize, out: &mut [u32; 4]) {
        let mut pos = start;
        let mut w = start / CHARS_PER_WORD;
        let group = _mm256_set1_epi64x(GROUP_LOW_BITS as i64);
        while end - pos >= CHARS_PER_AVX2 {
            // SAFETY: the load reads words[w..w + 4] in bounds.
            let v = unsafe { _mm256_loadu_si256(words.as_ptr().add(w).cast()) };
            let lo = v;
            let hi = _mm256_srli_epi64(v, 1);
            let lo_g = _mm256_and_si256(lo, group);
            let hi_g = _mm256_and_si256(hi, group);
            out[0] += popcount256(_mm256_andnot_si256(hi, _mm256_andnot_si256(lo, group)));
            out[1] += popcount256(_mm256_andnot_si256(hi, lo_g));
            out[2] += popcount256(_mm256_andnot_si256(lo, hi_g));
            out[3] += popcount256(_mm256_and_si256(hi_g, lo));
            pos += CHARS_PER_AVX2;
            w += 4;
        }
        count_all_2bit_sse2(words, pos, end, out);
    }

    // -- 4-bit nibble layout ------------------------------------------------

    /// [`super::count_pattern_nibble`], 32 nibbles (16 bytes) per step: the
    /// low and high nibble planes are compared byte-wise against the
    /// broadcast pattern.
    pub fn count_pattern_nibble_sse2(
        words: &[u64],
        pattern: u64,
        start: usize,
        end: usize,
    ) -> usize {
        let bytes = words_as_bytes(words);
        let mut pos = start;
        let mut count = 0u32;
        // SAFETY: SSE2 baseline; each load reads bytes[pos/2..pos/2 + 16],
        // in bounds because `end` nibbles exist in storage.
        unsafe {
            let needle = _mm_set1_epi8(pattern as i8);
            let low_mask = _mm_set1_epi8(0x0F);
            while end - pos >= NIBBLES_PER_SSE2 {
                let v = _mm_loadu_si128(bytes.as_ptr().add(pos / 2).cast());
                let lo = _mm_and_si128(v, low_mask);
                let hi = _mm_and_si128(_mm_srli_epi16(v, 4), low_mask);
                count += (_mm_movemask_epi8(_mm_cmpeq_epi8(lo, needle)) as u32).count_ones();
                count += (_mm_movemask_epi8(_mm_cmpeq_epi8(hi, needle)) as u32).count_ones();
                pos += NIBBLES_PER_SSE2;
            }
        }
        count as usize + count_pattern_nibble_swar(words, pattern, pos, end)
    }

    /// [`super::count_pattern_nibble`], 64 nibbles (32 bytes) per step.
    #[target_feature(enable = "avx2")]
    pub fn count_pattern_nibble_avx2(
        words: &[u64],
        pattern: u64,
        start: usize,
        end: usize,
    ) -> usize {
        let bytes = words_as_bytes(words);
        let mut pos = start;
        let mut count = 0u32;
        let needle = _mm256_set1_epi8(pattern as i8);
        let low_mask = _mm256_set1_epi8(0x0F);
        while end - pos >= NIBBLES_PER_AVX2 {
            // SAFETY: the load reads bytes[pos/2..pos/2 + 32] in bounds.
            let v = unsafe { _mm256_loadu_si256(bytes.as_ptr().add(pos / 2).cast()) };
            let lo = _mm256_and_si256(v, low_mask);
            let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
            count += (_mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, needle)) as u32).count_ones();
            count += (_mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, needle)) as u32).count_ones();
            pos += NIBBLES_PER_AVX2;
        }
        count as usize + count_pattern_nibble_sse2(words, pattern, pos, end)
    }

    /// [`super::nibble_histogram_into`] via bit planes, 32 nibbles (16
    /// bytes) per chunk.
    ///
    /// Plane bit layout per chunk word (32 bits): bit `j` is the low nibble
    /// of byte `j` (nibble `2j`), bit `16 + j` the high nibble (nibble
    /// `2j + 1`).  A histogram is order-blind, so the interleaved nibble
    /// order inside the plane is irrelevant — only the span mask has to
    /// follow the same layout.
    pub fn nibble_histogram_sse2(words: &[u64], start: usize, end: usize, out: &mut [u32]) {
        let bytes = words_as_bytes(words);
        let mut pos = start;
        // SAFETY: SSE2 baseline; each load reads bytes[pos/2..pos/2 + 16],
        // kept in bounds by the explicit check below.
        unsafe {
            while end - pos >= 16 && pos / 2 + 16 <= bytes.len() {
                let in_chunk = (end - pos).min(NIBBLES_PER_SSE2);
                let v = _mm_loadu_si128(bytes.as_ptr().add(pos / 2).cast());
                macro_rules! plane {
                    ($lo_sh:literal, $hi_sh:literal) => {{
                        let lo = (_mm_movemask_epi8(_mm_slli_epi16(v, $lo_sh)) as u16) as u64;
                        let hi = (_mm_movemask_epi8(_mm_slli_epi16(v, $hi_sh)) as u16) as u64;
                        lo | (hi << 16)
                    }};
                }
                let planes: [u64; 4] = [plane!(7, 3), plane!(6, 2), plane!(5, 1), plane!(4, 0)];
                let span =
                    low_bits((in_chunk as u64).div_ceil(2)) | (low_bits(in_chunk as u64 / 2) << 16);
                nibble_plane_tree(&planes, span, out);
                pos += in_chunk;
            }
        }
        nibble_histogram_swar(words, pos, end, out);
    }

    /// [`super::nibble_histogram_into`] via bit planes, 64 nibbles (32
    /// bytes) per chunk; plane layout mirrors the SSE2 kernel with 32-bit
    /// halves (`lo | hi << 32`).
    #[target_feature(enable = "avx2")]
    pub fn nibble_histogram_avx2(words: &[u64], start: usize, end: usize, out: &mut [u32]) {
        let bytes = words_as_bytes(words);
        let mut pos = start;
        while end - pos >= 32 && pos / 2 + 32 <= bytes.len() {
            let in_chunk = (end - pos).min(NIBBLES_PER_AVX2);
            // SAFETY: the load reads bytes[pos/2..pos/2 + 32], in bounds by
            // the loop condition.
            let v = unsafe { _mm256_loadu_si256(bytes.as_ptr().add(pos / 2).cast()) };
            macro_rules! plane {
                ($lo_sh:literal, $hi_sh:literal) => {{
                    let lo = (_mm256_movemask_epi8(_mm256_slli_epi16(v, $lo_sh)) as u32) as u64;
                    let hi = (_mm256_movemask_epi8(_mm256_slli_epi16(v, $hi_sh)) as u32) as u64;
                    lo | (hi << 32)
                }};
            }
            let planes: [u64; 4] = [plane!(7, 3), plane!(6, 2), plane!(5, 1), plane!(4, 0)];
            let span =
                low_bits((in_chunk as u64).div_ceil(2)) | (low_bits(in_chunk as u64 / 2) << 32);
            nibble_plane_tree(&planes, span, out);
            pos += in_chunk;
        }
        nibble_histogram_sse2(words, pos, end, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Every backend the running build can exercise.
    fn backends() -> Vec<ActiveBackend> {
        let mut backends = vec![ActiveBackend::Swar];
        let best = ScanBackend::Simd.resolve();
        if best == ActiveBackend::Avx2 {
            backends.push(ActiveBackend::Sse2);
        }
        if best.is_simd() {
            backends.push(best);
        }
        backends
    }

    #[test]
    fn backend_resolution_is_sane() {
        assert_eq!(ScanBackend::Swar.resolve(), ActiveBackend::Swar);
        let auto = ScanBackend::Auto.resolve();
        assert_eq!(auto, ScanBackend::Simd.resolve());
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-swar"))))]
        assert_eq!(auto, ActiveBackend::Swar);
        assert_eq!(ActiveBackend::Avx2.name(), "avx2");
        assert!(!ActiveBackend::Swar.is_simd());
        assert!(ActiveBackend::Sse2.is_simd());
    }

    #[test]
    fn byte_kernels_agree_across_backends() {
        let mut state = 11u64;
        for code_count in [6usize, 23, 31] {
            let data: Vec<u8> = (0..200)
                .map(|_| (xorshift(&mut state) % code_count as u64) as u8)
                .collect();
            for backend in backends() {
                for c in 0..code_count as u8 {
                    for len in [0usize, 1, 7, 16, 31, 33, 64, 127, 128, 200] {
                        assert_eq!(
                            count_eq_bytes(&data[..len], c, backend),
                            data[..len].iter().filter(|&&b| b == c).count(),
                            "backend {backend} len {len} c {c}"
                        );
                    }
                }
                // Prefix histograms at every (start, end) shape the scan
                // sees: block-aligned starts, arbitrary ends, including
                // ends close to the data's end (partial trailing chunk).
                for start in [0usize, 64, 128] {
                    for end in [
                        start,
                        start + 1,
                        start + 31,
                        start + 32,
                        start + 63,
                        137,
                        200,
                    ] {
                        if end < start || end > data.len() {
                            continue;
                        }
                        let mut expected = vec![0u32; code_count];
                        for &b in &data[start..end] {
                            expected[b as usize] += 1;
                        }
                        let mut counts = vec![0u32; code_count];
                        byte_histogram_prefix(&data, start, end, &mut counts, backend);
                        assert_eq!(
                            counts, expected,
                            "backend {backend} code_count {code_count} [{start}, {end})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn two_bit_kernels_agree_across_backends() {
        let mut state = 77u64;
        let chars: usize = 512 + 13; // several AVX2 chunks plus a ragged tail
        let words: Vec<u64> = (0..chars.div_ceil(CHARS_PER_WORD))
            .map(|_| xorshift(&mut state))
            .collect();
        let naive = |pattern: u64, start: usize, end: usize| -> usize {
            (start..end)
                .filter(|&i| {
                    (words[i / CHARS_PER_WORD] >> (2 * (i % CHARS_PER_WORD))) & 3 == pattern
                })
                .count()
        };
        for backend in backends() {
            for start_block in [0usize, 1, 4] {
                let start = start_block * CHARS_PER_WORD;
                for end in [start, start + 1, start + 63, start + 64, start + 130, chars] {
                    if end < start || end > chars {
                        continue;
                    }
                    let mut all = [0u32; 4];
                    count_all_2bit(&words, start, end, &mut all, backend);
                    for pattern in 0..4u64 {
                        let expected = naive(pattern, start, end);
                        assert_eq!(
                            count_pattern_2bit(&words, pattern, start, end, backend),
                            expected,
                            "backend {backend} pattern {pattern} [{start}, {end})"
                        );
                        assert_eq!(all[pattern as usize] as usize, expected);
                    }
                }
            }
        }
    }

    #[test]
    fn nibble_kernels_agree_across_backends() {
        let mut state = 99u64;
        let nibbles: usize = 256 + 9;
        let words: Vec<u64> = (0..nibbles.div_ceil(NIBBLE_CHARS_PER_WORD))
            .map(|_| xorshift(&mut state))
            .collect();
        let nibble_at = |i: usize| -> usize {
            ((words[i / NIBBLE_CHARS_PER_WORD] >> (4 * (i % NIBBLE_CHARS_PER_WORD))) & 0xF) as usize
        };
        for backend in backends() {
            for start_block in [0usize, 1, 3] {
                let start = start_block * NIBBLE_CHARS_PER_WORD;
                for end in [
                    start,
                    start + 5,
                    start + 32,
                    start + 64,
                    start + 100,
                    nibbles,
                ] {
                    if end < start || end > nibbles {
                        continue;
                    }
                    let mut expected = [0u32; 16];
                    for i in start..end {
                        expected[nibble_at(i)] += 1;
                    }
                    let mut hist = [0u32; 16];
                    nibble_histogram_into(&words, start, end, &mut hist, backend);
                    assert_eq!(hist, expected, "backend {backend} [{start}, {end})");
                    for pattern in 0..16u64 {
                        assert_eq!(
                            count_pattern_nibble(&words, pattern, start, end, backend),
                            expected[pattern as usize] as usize,
                            "backend {backend} pattern {pattern} [{start}, {end})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn popcount_words_matches_scalar() {
        let mut state = 5u64;
        let words: Vec<u64> = (0..17).map(|_| xorshift(&mut state)).collect();
        let expected: u32 = words.iter().map(|w| w.count_ones()).sum();
        assert_eq!(popcount_words(&words), expected);
        assert_eq!(popcount_words(&[]), 0);
    }
}
