//! Suffix-trie emulation over a compressed suffix array (Section 5).
//!
//! BWT-SW and ALAE both walk the conceptual suffix trie of the text `T`
//! top-down, appending one character to the represented substring `X` per
//! step.  An FM-index extends patterns by *prepending* characters, so —
//! exactly as the paper describes — the index is built over the reversed
//! text `T⁻¹`: prepending `c` to `X⁻¹` is the same as appending `c` to `X`.
//!
//! [`TextIndex`] owns the forward text and the reversed-text FM-index;
//! [`SuffixTrieCursor`] is a lightweight (range, depth) pair representing a
//! trie node, i.e. a distinct substring of `T` together with all of its
//! occurrences.

use crate::fm_index::{FmIndex, SaRange, MAX_CODE_COUNT};
use crate::options::IndexOptions;
use crate::rank::{CheckpointScheme, RankLayout, ScanSnapshot};
use crate::simd::{ActiveBackend, ScanBackend};
use alae_bioseq::SharedBytes;
use std::sync::Arc;

/// Largest number of children a trie node can have (`MAX_CODE_COUNT` minus
/// the separator, which never labels an edge).
pub const MAX_CHILDREN: usize = MAX_CODE_COUNT - 1;

/// A reusable, allocation-free buffer of one node's children.
///
/// [`TextIndex::children_into`] fills the buffer in place; DFS loops keep a
/// single `ChildBuf` alive across every node they expand instead of
/// allocating a `Vec` per node.
#[derive(Debug, Clone)]
pub struct ChildBuf {
    entries: [(u8, SuffixTrieCursor); MAX_CHILDREN],
    len: usize,
}

impl ChildBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        const EMPTY: (u8, SuffixTrieCursor) = (
            0,
            SuffixTrieCursor {
                range: SaRange { start: 0, end: 0 },
                depth: 0,
            },
        );
        Self {
            entries: [EMPTY; MAX_CHILDREN],
            len: 0,
        }
    }

    /// Number of children currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the node had no children.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stored `(edge label, child cursor)` pairs, in code order.
    #[inline]
    pub fn as_slice(&self) -> &[(u8, SuffixTrieCursor)] {
        &self.entries[..self.len]
    }

    /// Iterate over the stored children.
    pub fn iter(&self) -> impl Iterator<Item = &(u8, SuffixTrieCursor)> {
        self.as_slice().iter()
    }

    #[inline]
    fn clear(&mut self) {
        self.len = 0;
    }

    #[inline]
    fn push(&mut self, label: u8, cursor: SuffixTrieCursor) {
        self.entries[self.len] = (label, cursor);
        self.len += 1;
    }
}

impl Default for ChildBuf {
    fn default() -> Self {
        Self::new()
    }
}

/// A searchable text: the forward code sequence plus the FM-index of its
/// reversal.
///
/// The forward text is a [`SharedBytes`] view, so an index built through
/// [`IndexOptions::build_text_index`] shares the caller's copy (e.g. a
/// `SequenceDatabase`'s concatenated text, or a window of a memory-mapped
/// index file) instead of duplicating a multi-megabyte buffer, and
/// [`TextIndex::shared_text`] lets further consumers share it onward.
#[derive(Debug, Clone)]
pub struct TextIndex {
    text: SharedBytes,
    code_count: usize,
    fm_reverse: FmIndex,
}

/// A node of the conceptual suffix trie: the set of occurrences of one
/// distinct substring of the text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuffixTrieCursor {
    /// SA range of the reversed substring in the reversed-text index.
    pub range: SaRange,
    /// Length of the represented substring (depth of the trie node).
    pub depth: usize,
}

impl SuffixTrieCursor {
    /// Number of occurrences of the represented substring in the text.
    #[inline]
    pub fn occurrence_count(&self) -> usize {
        self.range.len()
    }
}

impl TextIndex {
    /// Build the index for a code sequence whose codes are `< code_count`.
    pub fn new(text: Vec<u8>, code_count: usize) -> Self {
        IndexOptions::new().build_text_index(text, code_count)
    }

    /// Build the index around an already-shared text without copying it —
    /// the constructor for aligners over a shared `SequenceDatabase` text.
    #[deprecated(note = "use IndexOptions::new().build_text_index(..)")]
    pub fn from_shared(text: Arc<Vec<u8>>, code_count: usize) -> Self {
        IndexOptions::new().build_text_index(text, code_count)
    }

    /// Build with an explicit rank-storage layout (see [`RankLayout`]); used
    /// to compare the packed and generic scan paths on the same text.
    #[deprecated(note = "use IndexOptions::new().layout(..).build_text_index(..)")]
    pub fn with_layout(text: Vec<u8>, code_count: usize, layout: RankLayout) -> Self {
        IndexOptions::new()
            .layout(layout)
            .build_text_index(text, code_count)
    }

    /// Build with an explicit rank-storage layout *and* checkpoint scheme
    /// (the flat `u32` scheme exists for comparison benchmarks; see
    /// [`CheckpointScheme`]).  The scan backend comes from
    /// [`crate::simd::default_backend`].
    #[deprecated(note = "use IndexOptions::new().layout(..).checkpoints(..).build_text_index(..)")]
    pub fn with_occ_options(
        text: Vec<u8>,
        code_count: usize,
        layout: RankLayout,
        scheme: CheckpointScheme,
    ) -> Self {
        IndexOptions::new()
            .layout(layout)
            .checkpoints(scheme)
            .build_text_index(text, code_count)
    }

    /// Build with an explicit in-block scan backend on top of the layout and
    /// checkpoint knobs (forced-SWAR/forced-SIMD indexes for the
    /// backend-agreement tests and the per-backend rank benchmarks; see
    /// [`ScanBackend`]).
    #[deprecated(note = "use IndexOptions::new().backend(..).build_text_index(..)")]
    pub fn with_scan_backend(
        text: Vec<u8>,
        code_count: usize,
        layout: RankLayout,
        scheme: CheckpointScheme,
        backend: ScanBackend,
    ) -> Self {
        IndexOptions::new()
            .layout(layout)
            .checkpoints(scheme)
            .backend(backend)
            .build_text_index(text, code_count)
    }

    /// The fully-explicit constructor over a shared text.
    #[deprecated(note = "use IndexOptions::new().backend(..).build_text_index(..)")]
    pub fn with_scan_backend_shared(
        text: Arc<Vec<u8>>,
        code_count: usize,
        layout: RankLayout,
        scheme: CheckpointScheme,
        backend: ScanBackend,
    ) -> Self {
        IndexOptions::new()
            .layout(layout)
            .checkpoints(scheme)
            .backend(backend)
            .build_text_index(text, code_count)
    }

    /// The one real constructor ([`IndexOptions::build_text_index`] and
    /// every deprecated constructor funnel here).
    pub(crate) fn build(text: SharedBytes, code_count: usize, options: &IndexOptions) -> Self {
        let reversed: Vec<u8> = text.iter().rev().copied().collect();
        let fm_reverse = FmIndex::build(
            &reversed,
            code_count,
            options.sample_rate,
            options.layout,
            options.checkpoints,
            options.backend,
        );
        Self {
            text,
            code_count,
            fm_reverse,
        }
    }

    /// Reassemble an index from its serialized parts without rebuilding
    /// anything (the `alae-store` open path): the forward text (possibly a
    /// zero-copy view into a mapped file) plus the reversed-text FM-index
    /// restored via [`FmIndex::from_parts`].
    pub fn from_parts(
        text: SharedBytes,
        code_count: usize,
        fm_reverse: FmIndex,
    ) -> Result<Self, String> {
        if fm_reverse.text_len() != text.len() {
            return Err(format!(
                "FM-index covers {} positions, text holds {}",
                fm_reverse.text_len(),
                text.len()
            ));
        }
        if fm_reverse.code_count() != code_count {
            return Err(format!(
                "FM-index built for {} codes, expected {code_count}",
                fm_reverse.code_count()
            ));
        }
        Ok(Self {
            text,
            code_count,
            fm_reverse,
        })
    }

    /// Scan-work counters of the underlying occurrence table.
    pub fn scan_snapshot(&self) -> ScanSnapshot {
        self.fm_reverse.scan_snapshot()
    }

    /// The FM-index over the **reversed** text (serialization support; all
    /// search traffic should go through the cursor API instead).
    pub fn fm_index(&self) -> &FmIndex {
        &self.fm_reverse
    }

    /// The rank-storage layout selected at construction.
    pub fn rank_layout(&self) -> RankLayout {
        self.fm_reverse.rank_layout()
    }

    /// The checkpoint scheme selected at construction.
    pub fn checkpoint_scheme(&self) -> CheckpointScheme {
        self.fm_reverse.checkpoint_scheme()
    }

    /// The in-block scan backend resolved at construction.
    pub fn scan_backend(&self) -> ActiveBackend {
        self.fm_reverse.scan_backend()
    }

    /// Footprint of the occurrence table alone (BWT storage + checkpoint
    /// rows), the per-layout figure the rank benchmark reports.
    pub fn occ_size_in_bytes(&self) -> usize {
        self.fm_reverse.occ_size_in_bytes()
    }

    /// The forward text.
    #[inline]
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// The forward text as a cheaply cloneable view (shared, not copied).
    pub fn shared_text(&self) -> SharedBytes {
        self.text.clone()
    }

    /// Text length `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True when the text is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Number of caller-visible codes (alphabet size + separator).
    #[inline]
    pub fn code_count(&self) -> usize {
        self.code_count
    }

    /// The root of the suffix trie (the empty substring, occurring
    /// everywhere).
    #[inline]
    pub fn root(&self) -> SuffixTrieCursor {
        SuffixTrieCursor {
            range: self.fm_reverse.full_range(),
            depth: 0,
        }
    }

    /// Follow the edge labelled `c` from the node `cursor`, i.e. extend the
    /// represented substring by one character **on the right**.  Returns
    /// `None` when no occurrence of `X·c` exists.
    #[inline]
    pub fn extend(&self, cursor: SuffixTrieCursor, c: u8) -> Option<SuffixTrieCursor> {
        let range = self.fm_reverse.extend_left(cursor.range, c);
        if range.is_empty() {
            None
        } else {
            Some(SuffixTrieCursor {
                range,
                depth: cursor.depth + 1,
            })
        }
    }

    /// Cursor for an explicit pattern, or `None` if it does not occur.
    pub fn cursor_for(&self, pattern: &[u8]) -> Option<SuffixTrieCursor> {
        let mut cursor = self.root();
        for &c in pattern {
            cursor = self.extend(cursor, c)?;
        }
        Some(cursor)
    }

    /// All starting positions (0-based) in the forward text of the substring
    /// represented by `cursor`.
    pub fn occurrences(&self, cursor: SuffixTrieCursor) -> Vec<usize> {
        let mut positions = Vec::new();
        self.occurrences_into(cursor, &mut positions);
        positions
    }

    /// Fill `out` with the starting positions of the substring represented
    /// by `cursor` (0-based, sorted), reusing the buffer's capacity — the
    /// allocation-free twin of [`TextIndex::occurrences`] for DFS hot loops
    /// that locate occurrences once per reported node.
    pub fn occurrences_into(&self, cursor: SuffixTrieCursor, out: &mut Vec<usize>) {
        let n = self.text.len();
        let depth = cursor.depth;
        out.clear();
        out.extend((cursor.range.start..cursor.range.end).map(|row| {
            let rev_start = self.fm_reverse.locate(row);
            // The reversed substring occupies rev_start .. rev_start+depth
            // in T⁻¹, which corresponds to the forward-range starting at
            // n − rev_start − depth.
            n - rev_start - depth
        }));
        out.sort_unstable();
    }

    /// Does `pattern` occur in the text?
    pub fn contains(&self, pattern: &[u8]) -> bool {
        self.cursor_for(pattern).is_some()
    }

    /// Starting positions of `pattern` in the text (0-based, sorted).
    pub fn find_occurrences(&self, pattern: &[u8]) -> Vec<usize> {
        match self.cursor_for(pattern) {
            Some(cursor) => self.occurrences(cursor),
            None => Vec::new(),
        }
    }

    /// Fill `buf` with the characters `c` for which the trie node has an
    /// outgoing edge, together with the child cursors.  Separators (code 0)
    /// are excluded — no alignment may extend across a record boundary.
    ///
    /// The expansion derives every child range from one
    /// [`FmIndex::extend_all`] call — exactly two occurrence-table block
    /// scans per node, independent of the alphabet size — and reuses the
    /// caller's buffer, so a DFS walk performs no per-node allocation.
    pub fn children_into(&self, cursor: SuffixTrieCursor, buf: &mut ChildBuf) {
        let mut ranges = [SaRange { start: 0, end: 0 }; MAX_CODE_COUNT];
        self.fm_reverse
            .extend_all(cursor.range, &mut ranges[..self.code_count]);
        buf.clear();
        for (code, &range) in ranges[..self.code_count].iter().enumerate().skip(1) {
            if !range.is_empty() {
                buf.push(
                    code as u8,
                    SuffixTrieCursor {
                        range,
                        depth: cursor.depth + 1,
                    },
                );
            }
        }
    }

    /// Allocating convenience wrapper around [`TextIndex::children_into`].
    pub fn children(&self, cursor: SuffixTrieCursor) -> Vec<(u8, SuffixTrieCursor)> {
        let mut buf = ChildBuf::new();
        self.children_into(cursor, &mut buf);
        buf.as_slice().to_vec()
    }

    /// Approximate index footprint in bytes (forward text + reversed-text
    /// FM-index); the "BWT index" series of Figure 11.
    pub fn size_in_bytes(&self) -> usize {
        self.text.len() + self.fm_reverse.size_in_bytes()
    }

    /// Footprint of the FM-index alone (without the forward text copy).
    pub fn fm_size_in_bytes(&self) -> usize {
        self.fm_reverse.size_in_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(ascii: &[u8]) -> Vec<u8> {
        ascii
            .iter()
            .map(|&b| match b {
                b'$' => 0u8,
                b'A' => 1,
                b'C' => 2,
                b'G' => 3,
                b'T' => 4,
                _ => unreachable!(),
            })
            .collect()
    }

    fn naive_occurrences(text: &[u8], pattern: &[u8]) -> Vec<usize> {
        if pattern.is_empty() || pattern.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pattern.len())
            .filter(|&i| &text[i..i + pattern.len()] == pattern)
            .collect()
    }

    #[test]
    fn extension_matches_naive_substring_search() {
        let text = encode(b"GCTAGCTAGGCATCGATCGGCTAGCAT");
        let index = TextIndex::new(text.clone(), 5);
        for pattern_ascii in [b"GCTA".as_slice(), b"GCTAG", b"CAT", b"TTTT", b"G", b"ATCG"] {
            let pattern = encode(pattern_ascii);
            let expected = naive_occurrences(&text, &pattern);
            assert_eq!(
                index.find_occurrences(&pattern),
                expected,
                "pattern {pattern_ascii:?}"
            );
            assert_eq!(index.contains(&pattern), !expected.is_empty());
        }
    }

    #[test]
    fn cursor_depth_tracks_pattern_length() {
        let text = encode(b"ACGTACGT");
        let index = TextIndex::new(text, 5);
        let cursor = index.cursor_for(&encode(b"ACGT")).unwrap();
        assert_eq!(cursor.depth, 4);
        assert_eq!(cursor.occurrence_count(), 2);
    }

    #[test]
    fn children_enumerate_right_extensions() {
        let text = encode(b"ACGTAAG");
        let index = TextIndex::new(text, 5);
        let root = index.root();
        let children = index.children(root);
        // Children of the root are the distinct characters of the text.
        let labels: Vec<u8> = children.iter().map(|(c, _)| *c).collect();
        assert_eq!(labels, vec![1, 2, 3, 4]); // A, C, G, T all occur.
                                              // Extensions of "A" are "AC" (pos 0), "AA" (pos 4), "AG" (pos 5).
        let a_cursor = index.cursor_for(&encode(b"A")).unwrap();
        let a_children: Vec<u8> = index.children(a_cursor).iter().map(|(c, _)| *c).collect();
        assert_eq!(a_children, vec![1, 2, 3]); // A, C, G
    }

    #[test]
    fn separators_are_never_trie_edges() {
        let text = encode(b"ACG$TAC");
        let index = TextIndex::new(text, 5);
        let root = index.root();
        let labels: Vec<u8> = index.children(root).iter().map(|(c, _)| *c).collect();
        assert!(!labels.contains(&0));
        // But explicit separator searches still work at the FM level.
        assert!(index.contains(&encode(b"G$T")));
    }

    #[test]
    fn depth_first_walk_visits_every_distinct_substring_once() {
        let text = encode(b"GATTACA");
        let index = TextIndex::new(text.clone(), 5);
        // Enumerate all distinct substrings via the trie and via brute force.
        let mut from_trie = std::collections::BTreeSet::new();
        let mut stack = vec![(index.root(), Vec::<u8>::new())];
        while let Some((cursor, prefix)) = stack.pop() {
            if !prefix.is_empty() {
                from_trie.insert(prefix.clone());
            }
            if prefix.len() >= text.len() {
                continue;
            }
            for (c, child) in index.children(cursor) {
                let mut next = prefix.clone();
                next.push(c);
                stack.push((child, next));
            }
        }
        let mut brute = std::collections::BTreeSet::new();
        for i in 0..text.len() {
            for j in i + 1..=text.len() {
                brute.insert(text[i..j].to_vec());
            }
        }
        assert_eq!(from_trie, brute);
    }

    #[test]
    fn children_into_matches_children_and_costs_two_scans_per_node() {
        let text = encode(b"GCTAGCTAGGCATCGATCGGCTAGCAT");
        let index = TextIndex::new(text, 5);
        let mut buf = ChildBuf::new();
        let mut stack = vec![index.root()];
        let mut nodes = 0u64;
        let before = index.scan_snapshot();
        let mut expected_from_vec = Vec::new();
        while let Some(cursor) = stack.pop() {
            if cursor.depth >= 4 {
                continue;
            }
            index.children_into(cursor, &mut buf);
            nodes += 1;
            expected_from_vec.push((cursor, buf.as_slice().to_vec()));
            for &(_, child) in buf.as_slice() {
                stack.push(child);
            }
        }
        let delta = index.scan_snapshot().since(&before);
        // The tentpole invariant: expanding a node costs exactly two
        // occurrence-table block scans, independent of σ (only observable
        // when the scan counters are compiled in).
        #[cfg(feature = "occ-counters")]
        assert_eq!(delta.block_scans, 2 * nodes);
        #[cfg(not(feature = "occ-counters"))]
        let _ = (delta, nodes);
        // And the fan-out reports exactly the edges the independent
        // per-character `extend` path finds.
        for (cursor, reported) in expected_from_vec {
            let mut expected = Vec::new();
            for c in 1..index.code_count() as u8 {
                if let Some(child) = index.extend(cursor, c) {
                    expected.push((c, child));
                }
            }
            assert_eq!(reported, expected);
        }
    }

    #[test]
    fn occurrence_counts_agree_with_positions() {
        let text = encode(b"ACACACACAC");
        let index = TextIndex::new(text, 5);
        let cursor = index.cursor_for(&encode(b"ACAC")).unwrap();
        assert_eq!(cursor.occurrence_count(), 4);
        assert_eq!(index.occurrences(cursor), vec![0, 2, 4, 6]);
    }

    #[test]
    fn size_accounting() {
        let index = TextIndex::new(vec![1u8; 5000], 5);
        assert!(index.size_in_bytes() > 5000);
        assert!(index.fm_size_in_bytes() > 0);
        assert_eq!(index.len(), 5000);
        assert!(!index.is_empty());
        assert_eq!(index.code_count(), 5);
    }
}
