//! FM-index: backward search and occurrence location over a BWT
//! (the "compressed suffix array" of Sections 2.3 and 5).
//!
//! The index operates on code sequences produced by `alae-bioseq`
//! (record separators are code 0, alphabet characters are `1..=σ`).
//! Internally every code is shifted up by one so that code 0 can serve as the
//! unique sentinel appended during suffix-array construction; callers never
//! see the shift.

use crate::bitvec::RankBitVec;
use crate::bwt::bwt_from_sa;
use crate::rank::{CheckpointScheme, OccTable, RankLayout, ScanSnapshot};
use crate::sais::suffix_array;
use crate::simd::{self, ActiveBackend, ScanBackend};

/// Largest caller-visible code count an index supports; keeps the
/// [`FmIndex::extend_all`] scratch buffers on the stack.
pub const MAX_CODE_COUNT: usize = 30;

/// A half-open range `[start, end)` of rows in the suffix array; the paper's
/// "SA range" (Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaRange {
    /// First row of the range.
    pub start: usize,
    /// One past the last row of the range.
    pub end: usize,
}

impl SaRange {
    /// Number of suffixes (occurrences) in the range.
    #[inline]
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the range contains no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Default suffix-array sampling rate (one sampled row per this many text
/// positions).
pub const DEFAULT_SA_SAMPLE_RATE: usize = 16;

/// An FM-index over a code sequence.
#[derive(Debug, Clone)]
pub struct FmIndex {
    /// Number of characters in the indexed text (excluding the sentinel).
    text_len: usize,
    /// Number of distinct caller-visible codes (alphabet size + separator).
    code_count: usize,
    /// Occurrence structure over the BWT of the *shifted* text.
    occ: OccTable,
    /// `c_array[c]` = number of BWT characters strictly smaller than shifted
    /// code `c`.
    c_array: Vec<usize>,
    /// Marks rows whose suffix-array value is sampled.
    sampled_rows: RankBitVec,
    /// Sampled suffix-array values, indexed by `sampled_rows.rank1(row)`.
    samples: Vec<u32>,
    /// Sampling rate used at construction time.
    sample_rate: usize,
}

impl FmIndex {
    /// Build an FM-index for `text`, whose codes must all be `< code_count`.
    pub fn new(text: &[u8], code_count: usize) -> Self {
        Self::build(
            text,
            code_count,
            DEFAULT_SA_SAMPLE_RATE,
            RankLayout::Auto,
            CheckpointScheme::default(),
            simd::default_backend(),
        )
    }

    /// Build with an explicit suffix-array sampling rate (≥ 1).
    #[deprecated(note = "use IndexOptions::new().sample_rate(..).build_fm_index(..)")]
    pub fn with_sample_rate(text: &[u8], code_count: usize, sample_rate: usize) -> Self {
        Self::build(
            text,
            code_count,
            sample_rate,
            RankLayout::Auto,
            CheckpointScheme::default(),
            simd::default_backend(),
        )
    }

    /// Build with an explicit sampling rate and rank-storage layout (the
    /// layout applies to the occurrence table over the BWT; see
    /// [`RankLayout`]).  Checkpoints use the default two-level scheme.
    #[deprecated(note = "use IndexOptions::new().sample_rate(..).layout(..).build_fm_index(..)")]
    pub fn with_options(
        text: &[u8],
        code_count: usize,
        sample_rate: usize,
        layout: RankLayout,
    ) -> Self {
        Self::build(
            text,
            code_count,
            sample_rate,
            layout,
            CheckpointScheme::default(),
            simd::default_backend(),
        )
    }

    /// Build with every occurrence-table knob explicit: sampling rate,
    /// rank-storage layout, and checkpoint scheme (see [`CheckpointScheme`];
    /// the flat scheme exists for layout-comparison benchmarks).  The scan
    /// backend comes from [`simd::default_backend`].
    #[deprecated(note = "use IndexOptions::new().checkpoints(..).build_fm_index(..)")]
    pub fn with_full_options(
        text: &[u8],
        code_count: usize,
        sample_rate: usize,
        layout: RankLayout,
        scheme: CheckpointScheme,
    ) -> Self {
        Self::build(
            text,
            code_count,
            sample_rate,
            layout,
            scheme,
            simd::default_backend(),
        )
    }

    /// Build with every knob explicit *including* the in-block scan backend
    /// (forced-SWAR and forced-SIMD tables for agreement tests and
    /// per-backend benchmarks).
    #[deprecated(note = "use IndexOptions::new().backend(..).build_fm_index(..)")]
    pub fn with_scan_backend(
        text: &[u8],
        code_count: usize,
        sample_rate: usize,
        layout: RankLayout,
        scheme: CheckpointScheme,
        backend: ScanBackend,
    ) -> Self {
        Self::build(text, code_count, sample_rate, layout, scheme, backend)
    }

    /// The one real constructor (every public constructor and
    /// [`crate::IndexOptions`] funnel here).
    pub(crate) fn build(
        text: &[u8],
        code_count: usize,
        sample_rate: usize,
        layout: RankLayout,
        scheme: CheckpointScheme,
        backend: ScanBackend,
    ) -> Self {
        assert!(sample_rate >= 1);
        assert!(code_count >= 1);
        assert!(
            code_count <= MAX_CODE_COUNT,
            "code_count {code_count} exceeds MAX_CODE_COUNT {MAX_CODE_COUNT}"
        );
        debug_assert!(text.iter().all(|&c| (c as usize) < code_count));

        let sa = suffix_array(text);
        let transform = bwt_from_sa(text, &sa);
        // Shift every code up by one; the sentinel entry stays 0.
        let shifted_code_count = code_count + 1;
        let mut shifted_bwt = transform.data;
        for (row, b) in shifted_bwt.iter_mut().enumerate() {
            if row != transform.sentinel_row {
                *b += 1;
            }
        }
        // Note: the sentinel entry equals 0 already; positions holding
        // caller code 0 (record separators) become 1 after the shift, so the
        // sentinel remains unique.

        // C array over shifted codes (counted before the BWT moves into the
        // occurrence table, so the table's scan counters stay at zero until
        // the first real query).
        let mut counts = vec![0u32; shifted_code_count];
        for &c in &shifted_bwt {
            counts[c as usize] += 1;
        }
        let occ = OccTable::build(shifted_bwt, shifted_code_count, layout, scheme, backend);
        let mut c_array = vec![0usize; shifted_code_count];
        let mut running = 0usize;
        for c in 1..shifted_code_count {
            running += counts[c - 1] as usize;
            c_array[c] = running;
        }

        // Sample suffix-array rows whose text position is a multiple of the
        // sampling rate (position n — the sentinel suffix — is always
        // sampled so locate() terminates).  The predicate is evaluated once
        // per row and drives both the marker bitvec and the sample values.
        let n_rows = sa.len();
        let is_sampled: Vec<bool> = sa
            .iter()
            .map(|&pos| {
                let pos = pos as usize;
                pos.is_multiple_of(sample_rate) || pos == text.len()
            })
            .collect();
        let sampled_rows = RankBitVec::from_bits(is_sampled.iter().copied());
        let mut samples = Vec::with_capacity(n_rows / sample_rate + 2);
        for (row, &sampled) in is_sampled.iter().enumerate() {
            if sampled {
                samples.push(sa[row]);
            }
        }

        Self {
            text_len: text.len(),
            code_count,
            occ,
            c_array,
            sampled_rows,
            samples,
            sample_rate,
        }
    }

    /// Length of the indexed text (without the sentinel).
    #[inline]
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// Number of suffix-array rows (`text_len + 1`).
    #[inline]
    pub fn row_count(&self) -> usize {
        self.text_len + 1
    }

    /// Caller-visible code count the index was built for.
    #[inline]
    pub fn code_count(&self) -> usize {
        self.code_count
    }

    /// The SA range covering every suffix (the empty pattern).
    #[inline]
    pub fn full_range(&self) -> SaRange {
        SaRange {
            start: 0,
            end: self.row_count(),
        }
    }

    /// Extend a pattern by prepending character `c` (backward-search step,
    /// Section 2.3: "it processes the string xS by iteratively inserting one
    /// character x before S").  Returns an empty range when `xS` does not
    /// occur.
    #[inline]
    pub fn extend_left(&self, range: SaRange, c: u8) -> SaRange {
        debug_assert!((c as usize) < self.code_count);
        let shifted = c + 1;
        let start = self.c_array[shifted as usize] + self.occ.rank(shifted, range.start);
        let end = self.c_array[shifted as usize] + self.occ.rank(shifted, range.end);
        SaRange { start, end }
    }

    /// One backward-search step for **every** character at once: derive the
    /// SA range of `c·S` for each caller code `c` from the range of `S`.
    ///
    /// `out` must have length [`FmIndex::code_count`]; `out[c]` receives the
    /// range of `c·S` (empty when `c·S` does not occur).  The two range
    /// boundaries are resolved with one [`OccTable::rank_all`] each, so the
    /// whole fan-out costs **two** block scans — the per-character
    /// [`FmIndex::extend_left`] loop it replaces costs `2·σ`.
    pub fn extend_all(&self, range: SaRange, out: &mut [SaRange]) {
        assert_eq!(out.len(), self.code_count);
        let shifted_count = self.c_array.len();
        let mut at_start = [0u32; MAX_CODE_COUNT + 1];
        let mut at_end = [0u32; MAX_CODE_COUNT + 1];
        self.occ
            .rank_all(range.start, &mut at_start[..shifted_count]);
        self.occ.rank_all(range.end, &mut at_end[..shifted_count]);
        for (code, slot) in out.iter_mut().enumerate() {
            let shifted = code + 1;
            let base = self.c_array[shifted];
            *slot = SaRange {
                start: base + at_start[shifted] as usize,
                end: base + at_end[shifted] as usize,
            };
        }
    }

    /// Scan-work counters of the underlying occurrence table (block scans
    /// and storage bytes touched since construction).
    pub fn scan_snapshot(&self) -> ScanSnapshot {
        self.occ.scan_snapshot()
    }

    /// The rank-storage layout selected at construction.
    pub fn rank_layout(&self) -> RankLayout {
        self.occ.layout()
    }

    /// The checkpoint scheme selected at construction.
    pub fn checkpoint_scheme(&self) -> CheckpointScheme {
        self.occ.checkpoint_scheme()
    }

    /// The in-block scan backend resolved at construction.
    pub fn scan_backend(&self) -> ActiveBackend {
        self.occ.scan_backend()
    }

    /// Footprint of the occurrence table alone (BWT storage + checkpoint
    /// rows) — the per-layout figure the rank benchmark reports.
    pub fn occ_size_in_bytes(&self) -> usize {
        self.occ.size_in_bytes()
    }

    /// Backward search for a whole pattern; `O(|pattern|)` extension steps.
    pub fn backward_search(&self, pattern: &[u8]) -> SaRange {
        let mut range = self.full_range();
        for &c in pattern.iter().rev() {
            range = self.extend_left(range, c);
            if range.is_empty() {
                break;
            }
        }
        range
    }

    /// Number of occurrences of `pattern` in the text.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.backward_search(pattern).len()
    }

    /// LF-mapping: the row of the suffix starting one position earlier.
    #[inline]
    fn lf(&self, row: usize) -> usize {
        let c = self.occ.get(row);
        if c == 0 {
            // The sentinel row maps to row 0 (the smallest suffix).
            return 0;
        }
        self.c_array[c as usize] + self.occ.rank(c, row)
    }

    /// The text position (0-based) of the suffix at `row`.
    ///
    /// Position `text_len` denotes the empty (sentinel) suffix.
    pub fn locate(&self, row: usize) -> usize {
        let mut row = row;
        let mut steps = 0usize;
        while !self.sampled_rows.get(row) {
            row = self.lf(row);
            steps += 1;
        }
        let base = self.samples[self.sampled_rows.rank1(row)] as usize;
        base + steps
    }

    /// Text positions of all occurrences of the pattern represented by
    /// `range` (callers typically obtain `range` from
    /// [`FmIndex::backward_search`]).
    pub fn locate_range(&self, range: SaRange) -> Vec<usize> {
        (range.start..range.end)
            .map(|row| self.locate(row))
            .collect()
    }

    /// Approximate index footprint in bytes (BWT + rank checkpoints +
    /// SA samples); used by the Figure 11 index-size experiment.
    pub fn size_in_bytes(&self) -> usize {
        self.occ.size_in_bytes()
            + self.c_array.len() * std::mem::size_of::<usize>()
            + self.sampled_rows.size_in_bytes()
            + self.samples.len() * std::mem::size_of::<u32>()
    }

    /// The sampling rate the index was built with.
    pub fn sample_rate(&self) -> usize {
        self.sample_rate
    }

    /// The occurrence table over the BWT of the shifted text (serialization
    /// support).
    pub fn occ_table(&self) -> &OccTable {
        &self.occ
    }

    /// The C array over shifted codes (serialization support).
    pub fn c_array(&self) -> &[usize] {
        &self.c_array
    }

    /// The sampled-row marker bit vector (serialization support).
    pub fn sampled_rows(&self) -> &RankBitVec {
        &self.sampled_rows
    }

    /// The sampled suffix-array values (serialization support).
    pub fn samples(&self) -> &[u32] {
        &self.samples
    }

    /// Reassemble an index from serialized parts without rebuilding the
    /// suffix array or the BWT (the `alae-store` open path).
    ///
    /// Shapes are validated (the occurrence table must cover `text_len + 1`
    /// rows of `code_count + 1` shifted codes, the C array must be a
    /// non-decreasing prefix-sum row, the sample list must match the marker
    /// bit vector); content integrity is covered by the store's per-section
    /// checksums.
    pub fn from_parts(
        text_len: usize,
        code_count: usize,
        occ: OccTable,
        c_array: Vec<usize>,
        sampled_rows: RankBitVec,
        samples: Vec<u32>,
        sample_rate: usize,
    ) -> Result<Self, String> {
        if sample_rate < 1 {
            return Err("sample_rate must be ≥ 1".into());
        }
        if !(1..=MAX_CODE_COUNT).contains(&code_count) {
            return Err(format!(
                "code_count {code_count} outside 1..={MAX_CODE_COUNT}"
            ));
        }
        let rows = text_len + 1;
        if occ.len() != rows {
            return Err(format!(
                "occurrence table covers {} positions, expected {rows}",
                occ.len()
            ));
        }
        if occ.code_count() != code_count + 1 {
            return Err(format!(
                "occurrence table built for {} codes, expected {}",
                occ.code_count(),
                code_count + 1
            ));
        }
        if c_array.len() != code_count + 1 {
            return Err(format!(
                "C array holds {} entries, expected {}",
                c_array.len(),
                code_count + 1
            ));
        }
        if c_array.first() != Some(&0)
            || c_array.windows(2).any(|w| w[0] > w[1])
            || c_array.last().is_some_and(|&last| last > rows)
        {
            return Err("C array is not a non-decreasing prefix-sum row".into());
        }
        if sampled_rows.len() != rows {
            return Err(format!(
                "sampled-row bit vector covers {} rows, expected {rows}",
                sampled_rows.len()
            ));
        }
        if samples.len() != sampled_rows.count_ones() {
            return Err(format!(
                "{} samples for {} marked rows",
                samples.len(),
                sampled_rows.count_ones()
            ));
        }
        if samples.iter().any(|&pos| pos as usize > text_len) {
            return Err("sample position past the end of the text".into());
        }
        Ok(Self {
            text_len,
            code_count,
            occ,
            c_array,
            sampled_rows,
            samples,
            sample_rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::IndexOptions;

    fn naive_occurrences(text: &[u8], pattern: &[u8]) -> Vec<usize> {
        if pattern.is_empty() || pattern.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pattern.len())
            .filter(|&i| &text[i..i + pattern.len()] == pattern)
            .collect()
    }

    #[test]
    fn paper_example_gc_occurrences() {
        // Section 2.3: "the SA range of a substring GC is [4, 5], then the
        // starting positions of GC in T are 5 and 1" (1-based).
        let text: Vec<u8> = b"GCTAGC"
            .iter()
            .map(|&b| match b {
                b'A' => 1u8,
                b'C' => 2,
                b'G' => 3,
                b'T' => 4,
                _ => unreachable!(),
            })
            .collect();
        let fm = FmIndex::new(&text, 5);
        let pattern = [3u8, 2u8]; // "GC"
        let range = fm.backward_search(&pattern);
        assert_eq!(range.len(), 2);
        let mut positions = fm.locate_range(range);
        positions.sort_unstable();
        // 0-based positions 0 and 4 correspond to the paper's 1-based 1 and 5.
        assert_eq!(positions, vec![0, 4]);
    }

    #[test]
    fn counts_match_naive_search() {
        let text: Vec<u8> = b"ACGTACGTAGGGCATACGT"
            .iter()
            .map(|&b| match b {
                b'A' => 1u8,
                b'C' => 2,
                b'G' => 3,
                b'T' => 4,
                _ => unreachable!(),
            })
            .collect();
        let fm = FmIndex::new(&text, 5);
        for pattern_ascii in [
            b"ACGT".as_slice(),
            b"GG",
            b"TTT",
            b"A",
            b"CATACGT",
            b"ACGTACGTAGGGCATACGT",
        ] {
            let pattern: Vec<u8> = pattern_ascii
                .iter()
                .map(|&b| match b {
                    b'A' => 1u8,
                    b'C' => 2,
                    b'G' => 3,
                    b'T' => 4,
                    _ => unreachable!(),
                })
                .collect();
            let expected = naive_occurrences(&text, &pattern);
            assert_eq!(
                fm.count(&pattern),
                expected.len(),
                "pattern {pattern_ascii:?}"
            );
            let mut located = fm.locate_range(fm.backward_search(&pattern));
            located.sort_unstable();
            assert_eq!(located, expected, "pattern {pattern_ascii:?}");
        }
    }

    #[test]
    fn random_text_occurrences_match_naive() {
        let mut state = 42u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let text: Vec<u8> = (0..800).map(|_| (next() % 4) as u8 + 1).collect();
        let fm = IndexOptions::new().sample_rate(8).build_fm_index(&text, 5);
        for len in [1usize, 2, 3, 5, 8] {
            for _ in 0..20 {
                let start = (next() as usize) % (text.len() - len);
                let pattern = &text[start..start + len];
                let expected = naive_occurrences(&text, pattern);
                let range = fm.backward_search(pattern);
                assert_eq!(range.len(), expected.len());
                let mut located = fm.locate_range(range);
                located.sort_unstable();
                assert_eq!(located, expected);
            }
        }
    }

    #[test]
    fn absent_patterns_give_empty_ranges() {
        let text = vec![1u8, 1, 1, 1, 2, 2, 2];
        let fm = FmIndex::new(&text, 5);
        assert!(fm.backward_search(&[3u8]).is_empty());
        assert!(fm.backward_search(&[1u8, 2, 1]).is_empty());
        assert_eq!(fm.count(&[4u8, 4]), 0);
    }

    #[test]
    fn texts_with_separators_are_searchable() {
        // Two records "ACG" and "CGT" concatenated with separator 0.
        let text = vec![1u8, 2, 3, 0, 2, 3, 4];
        let fm = FmIndex::new(&text, 5);
        // "CG" occurs in both records.
        assert_eq!(fm.count(&[2u8, 3]), 2);
        // A pattern spanning the separator only matches when it includes it.
        assert_eq!(fm.count(&[3u8, 2]), 0);
        assert_eq!(fm.count(&[3u8, 0, 2]), 1);
    }

    #[test]
    fn full_range_and_empty_pattern() {
        let text = vec![1u8, 2, 3, 4];
        let fm = FmIndex::new(&text, 5);
        assert_eq!(fm.full_range().len(), 5);
        assert_eq!(fm.backward_search(&[]).len(), 5);
        assert_eq!(fm.text_len(), 4);
        assert_eq!(fm.row_count(), 5);
    }

    #[test]
    fn locate_every_row_is_a_permutation() {
        let text: Vec<u8> = (0..100).map(|i| (i % 4) as u8 + 1).collect();
        for rate in [1usize, 4, 16, 64] {
            let fm = IndexOptions::new()
                .sample_rate(rate)
                .build_fm_index(&text, 5);
            let mut positions: Vec<usize> = (0..fm.row_count()).map(|row| fm.locate(row)).collect();
            positions.sort_unstable();
            let expected: Vec<usize> = (0..=text.len()).collect();
            assert_eq!(positions, expected, "rate {rate}");
        }
    }

    #[test]
    fn extend_all_matches_per_character_extend_left() {
        let mut state = 77u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for code_count in [5usize, 9, 21] {
            let sigma = code_count - 1;
            let text: Vec<u8> = (0..600)
                .map(|_| (next() % sigma as u64) as u8 + 1)
                .collect();
            let fm = FmIndex::new(&text, code_count);
            // Random ranges reached by short backward searches plus the full
            // range and an empty range.
            let mut ranges = vec![fm.full_range(), SaRange { start: 3, end: 3 }];
            for _ in 0..30 {
                let len = (next() % 4) as usize + 1;
                let pattern: Vec<u8> = (0..len)
                    .map(|_| (next() % sigma as u64) as u8 + 1)
                    .collect();
                ranges.push(fm.backward_search(&pattern));
            }
            let mut all = vec![SaRange { start: 0, end: 0 }; code_count];
            for range in ranges {
                fm.extend_all(range, &mut all);
                for c in 0..code_count as u8 {
                    assert_eq!(
                        all[c as usize],
                        fm.extend_left(range, c),
                        "code_count={code_count} range={range:?} c={c}"
                    );
                }
            }
        }
    }

    #[cfg(feature = "occ-counters")]
    #[test]
    fn extend_all_costs_two_block_scans_regardless_of_alphabet() {
        for code_count in [5usize, 21] {
            let sigma = code_count - 1;
            let text: Vec<u8> = (0..400).map(|i| (i % sigma) as u8 + 1).collect();
            let fm = FmIndex::new(&text, code_count);
            let mut out = vec![SaRange { start: 0, end: 0 }; code_count];
            let before = fm.scan_snapshot();
            for _ in 0..10 {
                fm.extend_all(fm.full_range(), &mut out);
            }
            let delta = fm.scan_snapshot().since(&before);
            assert_eq!(delta.block_scans, 20, "code_count={code_count}");
        }
    }

    #[test]
    fn size_accounting_scales_with_text() {
        let small = FmIndex::new(&vec![1u8; 1_000], 5);
        let large = FmIndex::new(&vec![1u8; 10_000], 5);
        assert!(large.size_in_bytes() > small.size_in_bytes());
        assert_eq!(small.sample_rate(), DEFAULT_SA_SAMPLE_RATE);
    }
}
