//! FM-index: backward search and occurrence location over a BWT
//! (the "compressed suffix array" of Sections 2.3 and 5).
//!
//! The index operates on code sequences produced by `alae-bioseq`
//! (record separators are code 0, alphabet characters are `1..=σ`).
//! Internally every code is shifted up by one so that code 0 can serve as the
//! unique sentinel appended during suffix-array construction; callers never
//! see the shift.

use crate::bitvec::RankBitVec;
use crate::bwt::bwt_from_sa;
use crate::rank::OccTable;
use crate::sais::suffix_array;

/// A half-open range `[start, end)` of rows in the suffix array; the paper's
/// "SA range" (Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaRange {
    /// First row of the range.
    pub start: usize,
    /// One past the last row of the range.
    pub end: usize,
}

impl SaRange {
    /// Number of suffixes (occurrences) in the range.
    #[inline]
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the range contains no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Default suffix-array sampling rate (one sampled row per this many text
/// positions).
pub const DEFAULT_SA_SAMPLE_RATE: usize = 16;

/// An FM-index over a code sequence.
#[derive(Debug, Clone)]
pub struct FmIndex {
    /// Number of characters in the indexed text (excluding the sentinel).
    text_len: usize,
    /// Number of distinct caller-visible codes (alphabet size + separator).
    code_count: usize,
    /// Occurrence structure over the BWT of the *shifted* text.
    occ: OccTable,
    /// `c_array[c]` = number of BWT characters strictly smaller than shifted
    /// code `c`.
    c_array: Vec<usize>,
    /// Marks rows whose suffix-array value is sampled.
    sampled_rows: RankBitVec,
    /// Sampled suffix-array values, indexed by `sampled_rows.rank1(row)`.
    samples: Vec<u32>,
    /// Sampling rate used at construction time.
    sample_rate: usize,
}

impl FmIndex {
    /// Build an FM-index for `text`, whose codes must all be `< code_count`.
    pub fn new(text: &[u8], code_count: usize) -> Self {
        Self::with_sample_rate(text, code_count, DEFAULT_SA_SAMPLE_RATE)
    }

    /// Build with an explicit suffix-array sampling rate (≥ 1).
    pub fn with_sample_rate(text: &[u8], code_count: usize, sample_rate: usize) -> Self {
        assert!(sample_rate >= 1);
        assert!(code_count >= 1);
        debug_assert!(text.iter().all(|&c| (c as usize) < code_count));

        let sa = suffix_array(text);
        let transform = bwt_from_sa(text, &sa);
        // Shift every code up by one; the sentinel entry stays 0.
        let shifted_code_count = code_count + 1;
        let mut shifted_bwt = transform.data;
        for (row, b) in shifted_bwt.iter_mut().enumerate() {
            if row != transform.sentinel_row {
                *b += 1;
            }
        }
        // Note: the sentinel entry equals 0 already; positions holding
        // caller code 0 (record separators) become 1 after the shift, so the
        // sentinel remains unique.

        let occ = OccTable::new(shifted_bwt, shifted_code_count);

        // C array over shifted codes.
        let mut counts = vec![0usize; shifted_code_count + 1];
        for &c in occ.data() {
            counts[c as usize + 1] += 1;
        }
        let mut c_array = vec![0usize; shifted_code_count];
        let mut running = 0usize;
        for c in 0..shifted_code_count {
            running += counts[c];
            c_array[c] = running;
        }

        // Sample suffix-array rows whose text position is a multiple of the
        // sampling rate (position n — the sentinel suffix — is always
        // sampled so locate() terminates).
        let n_rows = sa.len();
        let mut samples = Vec::with_capacity(n_rows / sample_rate + 2);
        let bits = (0..n_rows).map(|row| {
            let pos = sa[row] as usize;
            pos % sample_rate == 0 || pos == text.len()
        });
        let sampled_rows = RankBitVec::from_bits(BitsWithLen {
            inner: bits,
            len: n_rows,
        });
        for row in 0..n_rows {
            let pos = sa[row] as usize;
            if pos % sample_rate == 0 || pos == text.len() {
                samples.push(sa[row]);
            }
        }

        Self {
            text_len: text.len(),
            code_count,
            occ,
            c_array,
            sampled_rows,
            samples,
            sample_rate,
        }
    }

    /// Length of the indexed text (without the sentinel).
    #[inline]
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// Number of suffix-array rows (`text_len + 1`).
    #[inline]
    pub fn row_count(&self) -> usize {
        self.text_len + 1
    }

    /// Caller-visible code count the index was built for.
    #[inline]
    pub fn code_count(&self) -> usize {
        self.code_count
    }

    /// The SA range covering every suffix (the empty pattern).
    #[inline]
    pub fn full_range(&self) -> SaRange {
        SaRange {
            start: 0,
            end: self.row_count(),
        }
    }

    /// Extend a pattern by prepending character `c` (backward-search step,
    /// Section 2.3: "it processes the string xS by iteratively inserting one
    /// character x before S").  Returns an empty range when `xS` does not
    /// occur.
    #[inline]
    pub fn extend_left(&self, range: SaRange, c: u8) -> SaRange {
        debug_assert!((c as usize) < self.code_count);
        let shifted = c + 1;
        let start = self.c_array[shifted as usize] + self.occ.rank(shifted, range.start);
        let end = self.c_array[shifted as usize] + self.occ.rank(shifted, range.end);
        SaRange { start, end }
    }

    /// Backward search for a whole pattern; `O(|pattern|)` extension steps.
    pub fn backward_search(&self, pattern: &[u8]) -> SaRange {
        let mut range = self.full_range();
        for &c in pattern.iter().rev() {
            range = self.extend_left(range, c);
            if range.is_empty() {
                break;
            }
        }
        range
    }

    /// Number of occurrences of `pattern` in the text.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.backward_search(pattern).len()
    }

    /// LF-mapping: the row of the suffix starting one position earlier.
    #[inline]
    fn lf(&self, row: usize) -> usize {
        let c = self.occ.get(row);
        if c == 0 {
            // The sentinel row maps to row 0 (the smallest suffix).
            return 0;
        }
        self.c_array[c as usize] + self.occ.rank(c, row)
    }

    /// The text position (0-based) of the suffix at `row`.
    ///
    /// Position `text_len` denotes the empty (sentinel) suffix.
    pub fn locate(&self, row: usize) -> usize {
        let mut row = row;
        let mut steps = 0usize;
        while !self.sampled_rows.get(row) {
            row = self.lf(row);
            steps += 1;
        }
        let base = self.samples[self.sampled_rows.rank1(row)] as usize;
        base + steps
    }

    /// Text positions of all occurrences of the pattern represented by
    /// `range` (callers typically obtain `range` from
    /// [`FmIndex::backward_search`]).
    pub fn locate_range(&self, range: SaRange) -> Vec<usize> {
        (range.start..range.end).map(|row| self.locate(row)).collect()
    }

    /// Approximate index footprint in bytes (BWT + rank checkpoints +
    /// SA samples); used by the Figure 11 index-size experiment.
    pub fn size_in_bytes(&self) -> usize {
        self.occ.size_in_bytes()
            + self.c_array.len() * std::mem::size_of::<usize>()
            + self.sampled_rows.size_in_bytes()
            + self.samples.len() * std::mem::size_of::<u32>()
    }

    /// The sampling rate the index was built with.
    pub fn sample_rate(&self) -> usize {
        self.sample_rate
    }
}

/// Adapter giving an `ExactSizeIterator` over bits.
struct BitsWithLen<I> {
    inner: I,
    len: usize,
}

impl<I: Iterator<Item = bool>> Iterator for BitsWithLen<I> {
    type Item = bool;
    fn next(&mut self) -> Option<bool> {
        let next = self.inner.next();
        if next.is_some() {
            self.len -= 1;
        }
        next
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len, Some(self.len))
    }
}

impl<I: Iterator<Item = bool>> ExactSizeIterator for BitsWithLen<I> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_occurrences(text: &[u8], pattern: &[u8]) -> Vec<usize> {
        if pattern.is_empty() || pattern.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pattern.len())
            .filter(|&i| &text[i..i + pattern.len()] == pattern)
            .collect()
    }

    #[test]
    fn paper_example_gc_occurrences() {
        // Section 2.3: "the SA range of a substring GC is [4, 5], then the
        // starting positions of GC in T are 5 and 1" (1-based).
        let text: Vec<u8> = b"GCTAGC".iter().map(|&b| match b {
            b'A' => 1u8,
            b'C' => 2,
            b'G' => 3,
            b'T' => 4,
            _ => unreachable!(),
        }).collect();
        let fm = FmIndex::new(&text, 5);
        let pattern = [3u8, 2u8]; // "GC"
        let range = fm.backward_search(&pattern);
        assert_eq!(range.len(), 2);
        let mut positions = fm.locate_range(range);
        positions.sort_unstable();
        // 0-based positions 0 and 4 correspond to the paper's 1-based 1 and 5.
        assert_eq!(positions, vec![0, 4]);
    }

    #[test]
    fn counts_match_naive_search() {
        let text: Vec<u8> = b"ACGTACGTAGGGCATACGT"
            .iter()
            .map(|&b| match b {
                b'A' => 1u8,
                b'C' => 2,
                b'G' => 3,
                b'T' => 4,
                _ => unreachable!(),
            })
            .collect();
        let fm = FmIndex::new(&text, 5);
        for pattern_ascii in [b"ACGT".as_slice(), b"GG", b"TTT", b"A", b"CATACGT", b"ACGTACGTAGGGCATACGT"] {
            let pattern: Vec<u8> = pattern_ascii
                .iter()
                .map(|&b| match b {
                    b'A' => 1u8,
                    b'C' => 2,
                    b'G' => 3,
                    b'T' => 4,
                    _ => unreachable!(),
                })
                .collect();
            let expected = naive_occurrences(&text, &pattern);
            assert_eq!(fm.count(&pattern), expected.len(), "pattern {pattern_ascii:?}");
            let mut located = fm.locate_range(fm.backward_search(&pattern));
            located.sort_unstable();
            assert_eq!(located, expected, "pattern {pattern_ascii:?}");
        }
    }

    #[test]
    fn random_text_occurrences_match_naive() {
        let mut state = 42u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let text: Vec<u8> = (0..800).map(|_| (next() % 4) as u8 + 1).collect();
        let fm = FmIndex::with_sample_rate(&text, 5, 8);
        for len in [1usize, 2, 3, 5, 8] {
            for _ in 0..20 {
                let start = (next() as usize) % (text.len() - len);
                let pattern = &text[start..start + len];
                let expected = naive_occurrences(&text, pattern);
                let range = fm.backward_search(pattern);
                assert_eq!(range.len(), expected.len());
                let mut located = fm.locate_range(range);
                located.sort_unstable();
                assert_eq!(located, expected);
            }
        }
    }

    #[test]
    fn absent_patterns_give_empty_ranges() {
        let text = vec![1u8, 1, 1, 1, 2, 2, 2];
        let fm = FmIndex::new(&text, 5);
        assert!(fm.backward_search(&[3u8]).is_empty());
        assert!(fm.backward_search(&[1u8, 2, 1]).is_empty());
        assert_eq!(fm.count(&[4u8, 4]), 0);
    }

    #[test]
    fn texts_with_separators_are_searchable() {
        // Two records "ACG" and "CGT" concatenated with separator 0.
        let text = vec![1u8, 2, 3, 0, 2, 3, 4];
        let fm = FmIndex::new(&text, 5);
        // "CG" occurs in both records.
        assert_eq!(fm.count(&[2u8, 3]), 2);
        // A pattern spanning the separator only matches when it includes it.
        assert_eq!(fm.count(&[3u8, 2]), 0);
        assert_eq!(fm.count(&[3u8, 0, 2]), 1);
    }

    #[test]
    fn full_range_and_empty_pattern() {
        let text = vec![1u8, 2, 3, 4];
        let fm = FmIndex::new(&text, 5);
        assert_eq!(fm.full_range().len(), 5);
        assert_eq!(fm.backward_search(&[]).len(), 5);
        assert_eq!(fm.text_len(), 4);
        assert_eq!(fm.row_count(), 5);
    }

    #[test]
    fn locate_every_row_is_a_permutation() {
        let text: Vec<u8> = (0..100).map(|i| (i % 4) as u8 + 1).collect();
        for rate in [1usize, 4, 16, 64] {
            let fm = FmIndex::with_sample_rate(&text, 5, rate);
            let mut positions: Vec<usize> = (0..fm.row_count()).map(|row| fm.locate(row)).collect();
            positions.sort_unstable();
            let expected: Vec<usize> = (0..=text.len()).collect();
            assert_eq!(positions, expected, "rate {rate}");
        }
    }

    #[test]
    fn size_accounting_scales_with_text() {
        let small = FmIndex::new(&vec![1u8; 1_000], 5);
        let large = FmIndex::new(&vec![1u8; 10_000], 5);
        assert!(large.size_in_bytes() > small.size_in_bytes());
        assert_eq!(small.sample_rate(), DEFAULT_SA_SAMPLE_RATE);
    }
}
