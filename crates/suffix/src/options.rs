//! One builder for every index construction knob.
//!
//! Historically each index type grew its own constructor ladder
//! (`with_layout`, `with_options`, `with_full_options`, `with_scan_backend`,
//! `with_scan_backend_shared`, …) and adding a knob meant widening every
//! rung.  [`IndexOptions`] replaces that zoo: one value carries the
//! rank-storage layout, checkpoint scheme, scan backend and suffix-array
//! sampling rate, and builds an [`OccTable`], [`FmIndex`] or [`TextIndex`]
//! from it.  The old constructors survive as `#[deprecated]` shims.
//!
//! # Why there is no `q` knob
//!
//! The ALAE q-gram filter length `q` is *not* an index-construction
//! parameter: Equation 2 of the paper derives it from the scoring scheme
//! (`ScoringScheme::q` in `alae-bioseq`), and the exactness proof depends on
//! using exactly that value.  Indexes are scheme-agnostic; `q` is resolved
//! per query from the request's scheme, so there is deliberately no way to
//! override it here.

use crate::fm_index::{FmIndex, DEFAULT_SA_SAMPLE_RATE};
use crate::rank::{CheckpointScheme, OccTable, RankLayout};
use crate::simd::{self, ScanBackend};
use crate::trie::TextIndex;
use alae_bioseq::SharedBytes;

/// Every index-construction knob in one place.
///
/// ```
/// use alae_suffix::{IndexOptions, RankLayout};
///
/// let index = IndexOptions::new()
///     .layout(RankLayout::Bytes)
///     .sample_rate(8)
///     .build_text_index(vec![1u8, 2, 3, 1, 2], 5);
/// assert_eq!(index.len(), 5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IndexOptions {
    pub(crate) layout: RankLayout,
    pub(crate) checkpoints: CheckpointScheme,
    pub(crate) backend: ScanBackend,
    pub(crate) sample_rate: usize,
}

impl IndexOptions {
    /// The defaults: auto layout, two-level checkpoints, the process-wide
    /// default scan backend (`ALAE_SCAN_BACKEND`, else auto-detection) and
    /// the default suffix-array sampling rate.
    pub fn new() -> Self {
        Self {
            layout: RankLayout::Auto,
            checkpoints: CheckpointScheme::default(),
            backend: simd::default_backend(),
            sample_rate: DEFAULT_SA_SAMPLE_RATE,
        }
    }

    /// Rank-storage layout for the occurrence table.
    pub fn layout(mut self, layout: RankLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Checkpoint-row scheme for the occurrence table.
    pub fn checkpoints(mut self, scheme: CheckpointScheme) -> Self {
        self.checkpoints = scheme;
        self
    }

    /// In-block scan backend (forced SWAR/SIMD for agreement tests and
    /// per-backend benchmarks).
    pub fn backend(mut self, backend: ScanBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Suffix-array sampling rate (≥ 1).
    pub fn sample_rate(mut self, rate: usize) -> Self {
        self.sample_rate = rate;
        self
    }

    /// Build an occurrence table for `data` (codes `< code_count`).
    pub fn build_occ_table(&self, data: Vec<u8>, code_count: usize) -> OccTable {
        OccTable::build(
            data,
            code_count,
            self.layout,
            self.checkpoints,
            self.backend,
        )
    }

    /// Build an FM-index for `text` (codes `< code_count`).
    pub fn build_fm_index(&self, text: &[u8], code_count: usize) -> FmIndex {
        FmIndex::build(
            text,
            code_count,
            self.sample_rate,
            self.layout,
            self.checkpoints,
            self.backend,
        )
    }

    /// Build a suffix-trie text index.  Accepts anything convertible into a
    /// [`SharedBytes`] — a `Vec<u8>`, an `Arc<Vec<u8>>`, or a view into a
    /// mapped file — so callers share the text instead of copying it.
    pub fn build_text_index(&self, text: impl Into<SharedBytes>, code_count: usize) -> TextIndex {
        TextIndex::build(text.into(), code_count, self)
    }
}

impl Default for IndexOptions {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::ActiveBackend;

    #[test]
    fn builder_knobs_reach_the_built_index() {
        let text = vec![1u8, 2, 3, 4, 1, 2, 3, 4, 2, 2];
        let index = IndexOptions::new()
            .layout(RankLayout::Bytes)
            .checkpoints(CheckpointScheme::FlatU32)
            .backend(ScanBackend::Swar)
            .sample_rate(4)
            .build_text_index(text, 5);
        assert_eq!(index.rank_layout(), RankLayout::Bytes);
        assert_eq!(index.checkpoint_scheme(), CheckpointScheme::FlatU32);
        assert_eq!(index.scan_backend(), ActiveBackend::Swar);
    }

    #[test]
    fn defaults_match_the_simple_constructors() {
        let text = vec![1u8, 2, 1, 2, 3];
        let a = IndexOptions::new().build_text_index(text.clone(), 5);
        let b = TextIndex::new(text.clone(), 5);
        assert_eq!(a.rank_layout(), b.rank_layout());
        assert_eq!(a.checkpoint_scheme(), b.checkpoint_scheme());
        assert_eq!(a.scan_backend(), b.scan_backend());
        assert_eq!(a.find_occurrences(&[1, 2]), b.find_occurrences(&[1, 2]));
    }

    #[test]
    fn fm_and_occ_builders_work() {
        let text = vec![1u8, 2, 3, 1, 2, 3, 1];
        let fm = IndexOptions::new().sample_rate(2).build_fm_index(&text, 4);
        assert_eq!(fm.sample_rate(), 2);
        assert_eq!(fm.count(&[1, 2]), 2);
        let occ = IndexOptions::new()
            .layout(RankLayout::PackedDna)
            .build_occ_table(text.clone(), 4);
        assert_eq!(occ.layout(), RankLayout::PackedDna);
        assert_eq!(occ.rank(1, text.len()), 3);
    }
}
