//! Global similarity `sim(S1, S2)` — the affine-gap alignment of two whole
//! strings (Section 2: "the similarity between two sequences S1 and S2 is
//! defined as the value of the alignment of S1 and S2 that maximizes total
//! alignment score").

use crate::NEG_INF;
use alae_bioseq::ScoringScheme;

/// The affine-gap global alignment score of `s1` and `s2`.
///
/// Both strings are aligned end to end (Needleman–Wunsch with Gotoh's affine
/// gap handling); leading and trailing gaps are charged like any other gap.
pub fn global_similarity(s1: &[u8], s2: &[u8], scheme: &ScoringScheme) -> i64 {
    let n = s1.len();
    let m = s2.len();
    if n == 0 && m == 0 {
        return 0;
    }
    if n == 0 {
        return scheme.gap_cost(m);
    }
    if m == 0 {
        return scheme.gap_cost(n);
    }

    // Row-by-row DP over s1; columns over s2.
    let mut prev_m = vec![NEG_INF; m + 1];
    let mut prev_ga = vec![NEG_INF; m + 1];
    let mut curr_m = vec![NEG_INF; m + 1];
    let mut curr_ga = vec![NEG_INF; m + 1];

    // Initial row: aligning the empty prefix of s1 against prefixes of s2
    // costs one gap of the prefix length.
    prev_m[0] = 0;
    for j in 1..=m {
        prev_m[j] = scheme.gap_cost(j);
        prev_ga[j] = NEG_INF;
    }

    for (i, &c1) in s1.iter().enumerate() {
        let row = i + 1;
        curr_m[0] = scheme.gap_cost(row);
        curr_ga[0] = scheme.gap_cost(row);
        let mut gb = NEG_INF;
        for (j, &c2) in s2.iter().enumerate() {
            let col = j + 1;
            let ga = (prev_ga[col] + scheme.ss).max(prev_m[col] + scheme.gap_open_extend());
            gb = (gb + scheme.ss).max(curr_m[col - 1] + scheme.gap_open_extend());
            let diag = prev_m[col - 1] + scheme.delta(c1, c2);
            curr_m[col] = diag.max(ga).max(gb);
            curr_ga[col] = ga;
        }
        std::mem::swap(&mut prev_m, &mut curr_m);
        std::mem::swap(&mut prev_ga, &mut curr_ga);
    }
    prev_m[m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use alae_bioseq::Alphabet;

    fn encode(ascii: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode(ascii).unwrap()
    }

    #[test]
    fn paper_example_sim_aaacg_aaccg() {
        // Section 2.1: sim(AAACG, AACCG) = 1·4 + (−3) = 1.
        let s1 = encode(b"AAACG");
        let s2 = encode(b"AACCG");
        assert_eq!(global_similarity(&s1, &s2, &ScoringScheme::DEFAULT), 1);
    }

    #[test]
    fn identical_strings_score_all_matches() {
        let s = encode(b"GATTACA");
        assert_eq!(global_similarity(&s, &s, &ScoringScheme::DEFAULT), 7);
    }

    #[test]
    fn empty_strings() {
        let s = encode(b"ACGT");
        let scheme = ScoringScheme::DEFAULT;
        assert_eq!(global_similarity(&[], &[], &scheme), 0);
        assert_eq!(global_similarity(&s, &[], &scheme), scheme.gap_cost(4));
        assert_eq!(global_similarity(&[], &s, &scheme), scheme.gap_cost(4));
    }

    #[test]
    fn single_insertion_uses_affine_cost() {
        let s1 = encode(b"ACGTACGT");
        let s2 = encode(b"ACGTAACGT"); // one extra A
        let scheme = ScoringScheme::DEFAULT;
        assert_eq!(global_similarity(&s1, &s2, &scheme), 8 + scheme.gap_cost(1));
    }

    #[test]
    fn long_gap_cheaper_than_many_opens() {
        let s1 = encode(b"AAAAAAAA");
        let s2 = encode(b"AAAAAAAAGGG"); // three extra characters
        let scheme = ScoringScheme::DEFAULT;
        // One gap of 3: 8·1 + (−5 − 6) = −3.  (Alternative alignments with
        // mismatches are worse.)
        assert_eq!(global_similarity(&s1, &s2, &scheme), 8 + scheme.gap_cost(3));
    }

    #[test]
    fn symmetric_in_arguments() {
        let s1 = encode(b"GCTAGCTAAC");
        let s2 = encode(b"GCTAGGTA");
        let scheme = ScoringScheme::DEFAULT;
        assert_eq!(
            global_similarity(&s1, &s2, &scheme),
            global_similarity(&s2, &s1, &scheme)
        );
    }
}
