//! Traceback of the single best local alignment.
//!
//! The hit-set API ([`crate::local_alignment_hits`]) only reports end
//! positions and scores, which is what the paper's evaluation counts.  The
//! examples additionally want to *show* an alignment, so this module keeps
//! the full matrices for a (small) text/query pair and walks back from the
//! best cell.

use crate::NEG_INF;
use alae_bioseq::ScoringScheme;

/// One column of a pairwise alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignedPair {
    /// Characters at the given 0-based text/query positions are aligned
    /// (match or substitution).
    Substitution {
        /// Position in the text.
        text_pos: usize,
        /// Position in the query.
        query_pos: usize,
        /// Whether the characters are identical.
        is_match: bool,
    },
    /// The text character is aligned against a gap (deletion from the query
    /// point of view).
    TextGap {
        /// Position in the text.
        text_pos: usize,
    },
    /// The query character is aligned against a gap (insertion from the
    /// query point of view).
    QueryGap {
        /// Position in the query.
        query_pos: usize,
    },
}

/// A fully traced local alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracebackAlignment {
    /// Best local score.
    pub score: i64,
    /// 0-based inclusive start position in the text.
    pub text_start: usize,
    /// 0-based inclusive end position in the text.
    pub text_end: usize,
    /// 0-based inclusive start position in the query.
    pub query_start: usize,
    /// 0-based inclusive end position in the query.
    pub query_end: usize,
    /// The alignment columns from start to end.
    pub columns: Vec<AlignedPair>,
}

impl TracebackAlignment {
    /// Render the alignment as three text lines (text row, marker row,
    /// query row) for display in examples.
    pub fn render(&self, text: &[u8], query: &[u8], decode: impl Fn(u8) -> char) -> String {
        let mut top = String::new();
        let mut middle = String::new();
        let mut bottom = String::new();
        for column in &self.columns {
            match *column {
                AlignedPair::Substitution {
                    text_pos,
                    query_pos,
                    is_match,
                } => {
                    top.push(decode(text[text_pos]));
                    middle.push(if is_match { '|' } else { '*' });
                    bottom.push(decode(query[query_pos]));
                }
                AlignedPair::TextGap { text_pos } => {
                    top.push(decode(text[text_pos]));
                    middle.push(' ');
                    bottom.push('-');
                }
                AlignedPair::QueryGap { query_pos } => {
                    top.push('-');
                    middle.push(' ');
                    bottom.push(decode(query[query_pos]));
                }
            }
        }
        format!("{top}\n{middle}\n{bottom}")
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Main,
    GapInQuery,
    GapInText,
    Stop,
}

/// Compute the single best local alignment (ties broken towards the
/// lexicographically smallest `(end_text, end_query)`), or `None` when no
/// positive-scoring alignment exists.
///
/// This keeps `O(n·m)` traceback state and is intended for display-sized
/// inputs (examples, tests), not for the large-scale experiments.
pub fn best_local_alignment(
    text: &[u8],
    query: &[u8],
    scheme: &ScoringScheme,
) -> Option<TracebackAlignment> {
    let n = text.len();
    let m = query.len();
    if n == 0 || m == 0 {
        return None;
    }

    // Full matrices: M, Ga (gap in query / vertical), Gb (gap in text /
    // horizontal), indexed [i][j] with 1-based borders.
    let mut mat_m = vec![vec![0i64; m + 1]; n + 1];
    let mut mat_ga = vec![vec![NEG_INF; m + 1]; n + 1];
    let mut mat_gb = vec![vec![NEG_INF; m + 1]; n + 1];

    let mut best = (0i64, 0usize, 0usize);
    for i in 1..=n {
        if text[i - 1] == alae_bioseq::alphabet::SEPARATOR_CODE {
            // Record boundary: nothing may end at, substitute against, or
            // gap across this row.
            continue;
        }
        for j in 1..=m {
            let ga = (mat_ga[i - 1][j] + scheme.ss).max(mat_m[i - 1][j] + scheme.gap_open_extend());
            let gb = (mat_gb[i][j - 1] + scheme.ss).max(mat_m[i][j - 1] + scheme.gap_open_extend());
            let diag = mat_m[i - 1][j - 1] + scheme.delta(text[i - 1], query[j - 1]);
            let score = diag.max(ga).max(gb).max(0);
            mat_m[i][j] = score;
            mat_ga[i][j] = ga;
            mat_gb[i][j] = gb;
            if score > best.0 {
                best = (score, i, j);
            }
        }
    }
    if best.0 <= 0 {
        return None;
    }

    // Trace back from the best cell.
    let (score, mut i, mut j) = best;
    let text_end = i - 1;
    let query_end = j - 1;
    let mut columns = Vec::new();
    let mut state = State::Main;
    while i > 0 && j > 0 {
        match state {
            State::Main => {
                let value = mat_m[i][j];
                if value == 0 {
                    state = State::Stop;
                } else if value == mat_m[i - 1][j - 1] + scheme.delta(text[i - 1], query[j - 1]) {
                    columns.push(AlignedPair::Substitution {
                        text_pos: i - 1,
                        query_pos: j - 1,
                        is_match: text[i - 1] == query[j - 1],
                    });
                    i -= 1;
                    j -= 1;
                } else if value == mat_ga[i][j] {
                    state = State::GapInQuery;
                } else {
                    debug_assert_eq!(value, mat_gb[i][j]);
                    state = State::GapInText;
                }
            }
            State::GapInQuery => {
                columns.push(AlignedPair::TextGap { text_pos: i - 1 });
                let value = mat_ga[i][j];
                if value == mat_m[i - 1][j] + scheme.gap_open_extend() {
                    state = State::Main;
                } else {
                    debug_assert_eq!(value, mat_ga[i - 1][j] + scheme.ss);
                }
                i -= 1;
            }
            State::GapInText => {
                columns.push(AlignedPair::QueryGap { query_pos: j - 1 });
                let value = mat_gb[i][j];
                if value == mat_m[i][j - 1] + scheme.gap_open_extend() {
                    state = State::Main;
                } else {
                    debug_assert_eq!(value, mat_gb[i][j - 1] + scheme.ss);
                }
                j -= 1;
            }
            State::Stop => break,
        }
        if state == State::Main && mat_m[i][j] == 0 {
            break;
        }
    }
    columns.reverse();
    Some(TracebackAlignment {
        score,
        text_start: i,
        text_end,
        query_start: j,
        query_end,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alae_bioseq::Alphabet;

    fn encode(ascii: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode(ascii).unwrap()
    }

    fn column_score(
        alignment: &TracebackAlignment,
        text: &[u8],
        query: &[u8],
        scheme: &ScoringScheme,
    ) -> i64 {
        let mut score = 0;
        let mut gap_run_text = 0usize;
        let mut gap_run_query = 0usize;
        for column in &alignment.columns {
            match *column {
                AlignedPair::Substitution {
                    text_pos,
                    query_pos,
                    ..
                } => {
                    score += scheme.delta(text[text_pos], query[query_pos]);
                    gap_run_text = 0;
                    gap_run_query = 0;
                }
                AlignedPair::TextGap { .. } => {
                    score += if gap_run_text == 0 {
                        scheme.gap_open_extend()
                    } else {
                        scheme.ss
                    };
                    gap_run_text += 1;
                    gap_run_query = 0;
                }
                AlignedPair::QueryGap { .. } => {
                    score += if gap_run_query == 0 {
                        scheme.gap_open_extend()
                    } else {
                        scheme.ss
                    };
                    gap_run_query += 1;
                    gap_run_text = 0;
                }
            }
        }
        score
    }

    #[test]
    fn exact_substring_traces_to_all_matches() {
        let text = encode(b"TTGCTAGCTT");
        let query = encode(b"GCTAGC");
        let alignment = best_local_alignment(&text, &query, &ScoringScheme::DEFAULT).unwrap();
        assert_eq!(alignment.score, 6);
        assert_eq!(alignment.text_start, 2);
        assert_eq!(alignment.text_end, 7);
        assert_eq!(alignment.query_start, 0);
        assert_eq!(alignment.query_end, 5);
        assert!(alignment
            .columns
            .iter()
            .all(|c| matches!(c, AlignedPair::Substitution { is_match: true, .. })));
    }

    #[test]
    fn traceback_score_matches_reported_score() {
        let text = encode(b"ACGTAGGTACCGTTACGTAACGGT");
        let query = encode(b"GGTACCGTTACG");
        let scheme = ScoringScheme::DEFAULT;
        let alignment = best_local_alignment(&text, &query, &scheme).unwrap();
        assert_eq!(
            column_score(&alignment, &text, &query, &scheme),
            alignment.score
        );
    }

    #[test]
    fn gapped_alignment_reconstructs_gap() {
        // Text has two extra characters relative to the query.
        let half = b"ACGTACGTACGTACGT";
        let mut text_ascii = half.to_vec();
        text_ascii.extend_from_slice(b"CC");
        text_ascii.extend_from_slice(half);
        let mut query_ascii = half.to_vec();
        query_ascii.extend_from_slice(half);
        let text = encode(&text_ascii);
        let query = encode(&query_ascii);
        let scheme = ScoringScheme::DEFAULT;
        let alignment = best_local_alignment(&text, &query, &scheme).unwrap();
        assert_eq!(alignment.score, 32 + scheme.gap_cost(2));
        let text_gaps = alignment
            .columns
            .iter()
            .filter(|c| matches!(c, AlignedPair::TextGap { .. }))
            .count();
        assert_eq!(text_gaps, 2);
        assert_eq!(
            column_score(&alignment, &text, &query, &scheme),
            alignment.score
        );
    }

    #[test]
    fn no_alignment_for_disjoint_alphabgot_content() {
        let text = encode(b"AAAAAA");
        let query = encode(b"GGGGGG");
        assert!(best_local_alignment(&text, &query, &ScoringScheme::DEFAULT).is_none());
    }

    #[test]
    fn render_produces_three_lines() {
        let text = encode(b"TTGCTAGCTT");
        let query = encode(b"GCTAGC");
        let alignment = best_local_alignment(&text, &query, &ScoringScheme::DEFAULT).unwrap();
        let rendered = alignment.render(&text, &query, |c| Alphabet::Dna.decode_code(c) as char);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "GCTAGC");
        assert_eq!(lines[2], "GCTAGC");
        assert!(lines[1].chars().all(|c| c == '|'));
    }

    #[test]
    fn empty_inputs_give_none() {
        assert!(best_local_alignment(&[], &encode(b"AC"), &ScoringScheme::DEFAULT).is_none());
        assert!(best_local_alignment(&encode(b"AC"), &[], &ScoringScheme::DEFAULT).is_none());
    }
}
