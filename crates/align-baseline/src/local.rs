//! The full `O(n·m)` local-alignment dynamic program.
//!
//! For text `T` (rows) and query `P` (columns) the recurrences of
//! Section 2.2 are computed over the *whole* matrix with the standard local
//! clamp at zero, so `M(i, j)` is the best score of any alignment of a
//! substring of `T` ending at `i` and a substring of `P` ending at `j` —
//! exactly the `A(i, j).score` of the BASIC algorithm.  Everything at or
//! above the threshold is reported.

use crate::NEG_INF;
use alae_bioseq::guard::{SearchGuard, Termination};
use alae_bioseq::hits::{AlignmentHit, HitMap};
use alae_bioseq::ScoringScheme;

/// Counters describing the work done by the full dynamic program, reported
/// alongside the ALAE/BWT-SW counters in the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalDpStats {
    /// Number of matrix entries computed (always `n · m`).
    pub calculated_entries: u64,
    /// Number of entries whose clamped score was positive.
    pub positive_entries: u64,
}

impl LocalDpStats {
    /// Accumulate another run's counters (used when aggregating a whole
    /// query workload).
    pub fn merge(&mut self, other: &LocalDpStats) {
        self.calculated_entries += other.calculated_entries;
        self.positive_entries += other.positive_entries;
    }
}

/// Compute all local alignment hits with `score ≥ threshold`.
///
/// `text` and `query` are code sequences (record separators allowed in the
/// text; the scoring scheme makes any alignment crossing one impossible).
pub fn local_alignment_hits(
    text: &[u8],
    query: &[u8],
    scheme: &ScoringScheme,
    threshold: i64,
) -> (Vec<AlignmentHit>, LocalDpStats) {
    let (hits, stats, _) =
        local_alignment_hits_guarded(text, query, scheme, threshold, &SearchGuard::none());
    (hits, stats)
}

/// [`local_alignment_hits`] under request guardrails: the row loop polls
/// `guard` once per text row (amortized; see [`SearchGuard`]) and stops
/// cleanly when a deadline, budget or cancellation trips.
///
/// Because the matrix is computed text-row by text-row and every end pair
/// is finalized by its row, a truncated run reports *exactly* the full
/// run's hits whose text end position lies in the completed row prefix.
pub fn local_alignment_hits_guarded(
    text: &[u8],
    query: &[u8],
    scheme: &ScoringScheme,
    threshold: i64,
    guard: &SearchGuard,
) -> (Vec<AlignmentHit>, LocalDpStats, Termination) {
    assert!(threshold > 0, "threshold must be positive");
    let m = query.len();
    let mut stats = LocalDpStats::default();
    let mut hits = HitMap::new();
    if m == 0 || text.is_empty() {
        return (Vec::new(), stats, Termination::Complete);
    }
    let mut probe = guard.probe(m);
    // The DP's whole scratch footprint is four fixed rows.
    let row_bytes = (4 * (m + 1) * std::mem::size_of::<i64>()) as u64;

    // One row at a time: M and the vertical gap score Ga need only the
    // previous row; the horizontal gap score Gb only the current row.
    let mut prev_m = vec![0i64; m + 1];
    let mut prev_ga = vec![NEG_INF; m + 1];
    let mut curr_m = vec![0i64; m + 1];
    let mut curr_ga = vec![NEG_INF; m + 1];

    for (i, &tc) in text.iter().enumerate() {
        // One poll per text row, before the row is computed: a truncated
        // run ends on a whole-row boundary.
        if probe.poll(|| row_bytes) {
            break;
        }
        if tc == alae_bioseq::alphabet::SEPARATOR_CODE {
            // A record boundary is a hard barrier: no alignment may end at
            // it, substitute against it, or bridge it with a gap.  Reset the
            // whole row so nothing carries across.
            for col in 0..=m {
                curr_m[col] = 0;
                curr_ga[col] = NEG_INF;
            }
            std::mem::swap(&mut prev_m, &mut curr_m);
            std::mem::swap(&mut prev_ga, &mut curr_ga);
            continue;
        }
        curr_m[0] = 0;
        curr_ga[0] = NEG_INF;
        let mut gb = NEG_INF;
        for (j, &qc) in query.iter().enumerate() {
            let col = j + 1;
            // Gap in the query (text character consumed): vertical move.
            let ga = (prev_ga[col] + scheme.ss).max(prev_m[col] + scheme.gap_open_extend());
            // Gap in the text (query character consumed): horizontal move.
            gb = (gb + scheme.ss).max(curr_m[col - 1] + scheme.gap_open_extend());
            let diag = prev_m[col - 1] + scheme.delta(tc, qc);
            let score = diag.max(ga).max(gb).max(0);
            curr_m[col] = score;
            curr_ga[col] = ga;
            stats.calculated_entries += 1;
            if score > 0 {
                stats.positive_entries += 1;
                if score >= threshold {
                    hits.record(i, j, score);
                }
            }
        }
        std::mem::swap(&mut prev_m, &mut curr_m);
        std::mem::swap(&mut prev_ga, &mut curr_ga);
        probe.add_work(m as u64);
    }

    (hits.into_hits(threshold), stats, probe.termination())
}

/// Compute the full clamped score matrix (row-major, `n × m`).
///
/// Exposed for tests and small examples only — it allocates `n·m` scores.
pub fn local_score_matrix(text: &[u8], query: &[u8], scheme: &ScoringScheme) -> Vec<Vec<i64>> {
    let m = query.len();
    let mut matrix = vec![vec![0i64; m]; text.len()];
    let mut prev_m = vec![0i64; m + 1];
    let mut prev_ga = vec![NEG_INF; m + 1];
    let mut curr_m = vec![0i64; m + 1];
    let mut curr_ga = vec![NEG_INF; m + 1];
    for (i, &tc) in text.iter().enumerate() {
        if tc == alae_bioseq::alphabet::SEPARATOR_CODE {
            for col in 0..=m {
                curr_m[col] = 0;
                curr_ga[col] = NEG_INF;
            }
            std::mem::swap(&mut prev_m, &mut curr_m);
            std::mem::swap(&mut prev_ga, &mut curr_ga);
            continue;
        }
        curr_m[0] = 0;
        curr_ga[0] = NEG_INF;
        let mut gb = NEG_INF;
        for (j, &qc) in query.iter().enumerate() {
            let col = j + 1;
            let ga = (prev_ga[col] + scheme.ss).max(prev_m[col] + scheme.gap_open_extend());
            gb = (gb + scheme.ss).max(curr_m[col - 1] + scheme.gap_open_extend());
            let diag = prev_m[col - 1] + scheme.delta(tc, qc);
            let score = diag.max(ga).max(gb).max(0);
            curr_m[col] = score;
            curr_ga[col] = ga;
            matrix[i][j] = score;
        }
        std::mem::swap(&mut prev_m, &mut curr_m);
        std::mem::swap(&mut prev_ga, &mut curr_ga);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use alae_bioseq::Alphabet;

    fn encode(ascii: &[u8]) -> Vec<u8> {
        Alphabet::Dna.encode(ascii).unwrap()
    }

    #[test]
    fn figure1_matrix_values() {
        // Figure 1 aligns X = GCTA (as text) against P = GCTAG with the
        // default scheme.  The bold M values on the main diagonal are
        // 1, 2, 3, 4 and M(4, 3) = −4, M(1, 5) = 1.
        let text = encode(b"GCTA");
        let query = encode(b"GCTAG");
        let matrix = local_score_matrix(&text, &query, &ScoringScheme::DEFAULT);
        // The clamped matrix reports max(0, value); check the positive cells.
        assert_eq!(matrix[0][0], 1);
        assert_eq!(matrix[1][1], 2);
        assert_eq!(matrix[2][2], 3);
        assert_eq!(matrix[3][3], 4);
        assert_eq!(matrix[0][4], 1); // G matches the trailing G of P.
                                     // M(4, 3) = −4 in the unclamped matrix ⇒ clamped to 0.
        assert_eq!(matrix[3][2], 0);
    }

    #[test]
    fn perfect_match_scores_length() {
        let text = encode(b"TTTTGCTAGCTT");
        let query = encode(b"GCTAGC");
        let (hits, stats) = local_alignment_hits(&text, &query, &ScoringScheme::DEFAULT, 6);
        assert_eq!(stats.calculated_entries, (text.len() * query.len()) as u64);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].score, 6);
        assert_eq!(hits[0].end_text, 9); // 0-based end of GCTAGC in the text.
        assert_eq!(hits[0].end_query, 5);
    }

    #[test]
    fn mismatch_and_gap_scores() {
        // Text contains the query with one substitution and, elsewhere, with
        // one deletion.
        let text = encode(b"AAGCTTGCAAAAAGCTTTTGCAAA");
        let query = encode(b"GCTTGC");
        let scheme = ScoringScheme::DEFAULT;
        let (hits, _) = local_alignment_hits(&text, &query, &scheme, 4);
        // Exact occurrence at positions 2..=7 scores 6.
        assert!(hits.iter().any(|h| h.score == 6 && h.end_text == 7));
        // No hit can exceed the query length.
        assert!(hits.iter().all(|h| h.score <= 6));
    }

    #[test]
    fn alignments_never_cross_separators() {
        // "GCTA" split across a record boundary must not align as a whole.
        let mut text = encode(b"AAGC");
        text.push(0);
        text.extend(encode(b"TAGG"));
        let query = encode(b"GCTA");
        let (hits, _) = local_alignment_hits(&text, &query, &ScoringScheme::DEFAULT, 3);
        assert!(hits.is_empty());
        // The same characters without the separator do align.
        let text2 = encode(b"AAGCTAGG");
        let (hits2, _) = local_alignment_hits(&text2, &query, &ScoringScheme::DEFAULT, 3);
        assert!(!hits2.is_empty());
    }

    #[test]
    fn affine_gap_is_preferred_over_two_opens() {
        // The text is the query with "CC" inserted in the middle.  Bridging
        // the insertion with one affine gap of length 2 costs sg + 2·ss = −9
        // and keeps all 32 matches (score 23); refusing to gap keeps at most
        // 16 consecutive matches.
        let half = b"ACGTACGTACGTACGT";
        let mut text_ascii = half.to_vec();
        text_ascii.extend_from_slice(b"CC");
        text_ascii.extend_from_slice(half);
        let mut query_ascii = half.to_vec();
        query_ascii.extend_from_slice(half);
        let text = encode(&text_ascii);
        let query = encode(&query_ascii);
        let (hits, _) = local_alignment_hits(&text, &query, &ScoringScheme::DEFAULT, 2);
        let best = hits.iter().map(|h| h.score).max().unwrap();
        assert_eq!(best, 32 + ScoringScheme::DEFAULT.gap_cost(2));
    }

    #[test]
    fn empty_inputs_produce_no_hits() {
        let (hits, stats) = local_alignment_hits(&[], &encode(b"ACGT"), &ScoringScheme::DEFAULT, 1);
        assert!(hits.is_empty());
        assert_eq!(stats.calculated_entries, 0);
        let (hits, _) = local_alignment_hits(&encode(b"ACGT"), &[], &ScoringScheme::DEFAULT, 1);
        assert!(hits.is_empty());
    }

    #[test]
    fn threshold_filters_hits() {
        let text = encode(b"GCTAGCTA");
        let query = encode(b"GCTAGCTA");
        let scheme = ScoringScheme::DEFAULT;
        let (hits_low, _) = local_alignment_hits(&text, &query, &scheme, 1);
        let (hits_high, _) = local_alignment_hits(&text, &query, &scheme, 8);
        assert!(hits_low.len() > hits_high.len());
        assert_eq!(hits_high.len(), 1);
        assert_eq!(hits_high[0].score, 8);
    }

    #[test]
    fn scores_are_symmetric_in_match_count() {
        // With only matches/mismatches (no gaps beneficial), the best score
        // equals matches·sa + mismatches·sb for the best substring pair.
        let text = encode(b"AAAACCCC");
        let query = encode(b"AAAA");
        let (hits, _) = local_alignment_hits(&text, &query, &ScoringScheme::DEFAULT, 4);
        assert_eq!(hits.iter().map(|h| h.score).max(), Some(4));
    }
}
