//! Full Smith–Waterman local alignment with affine gaps (the Gotoh
//! formulation of Section 2.2), used as
//!
//! 1. the paper's slowest baseline (Section 7.1: "the Smith-Waterman
//!    algorithm took 7.7 hours to align a query with 10 thousand characters
//!    against a text with 50 million characters"), and
//! 2. the ground-truth oracle against which the exactness of BWT-SW and
//!    ALAE is verified in the integration tests.
//!
//! The crate exposes three entry points:
//!
//! * [`local_alignment_hits`] — every `(end_text, end_query)` pair whose
//!   best local-alignment score reaches a threshold (the problem definition
//!   of Section 2.1),
//! * [`best_local_alignment`] — the single best local alignment with a full
//!   traceback (used by the examples to print alignments),
//! * [`global_similarity`] — the `sim(S1, S2)` of Section 2 (global
//!   alignment of two whole strings with affine gaps).
#![forbid(unsafe_code)]

pub mod global;
pub mod local;
pub mod traceback;

pub use global::global_similarity;
pub use local::{
    local_alignment_hits, local_alignment_hits_guarded, local_score_matrix, LocalDpStats,
};
pub use traceback::{best_local_alignment, AlignedPair, TracebackAlignment};

/// Sentinel "minus infinity" used in the dynamic programs.  Kept far from
/// `i64::MIN` so that adding penalties can never overflow.
pub(crate) const NEG_INF: i64 = i64::MIN / 4;
