//! Protein database search: align protein queries (σ = 20) under the
//! protein scoring scheme ⟨1, −3, −11, −1⟩ with an E-value threshold, the
//! setup of the paper's UniParc experiments.
//!
//! ```bash
//! cargo run --release --example protein_search
//! ```

use alae::bioseq::{Alphabet, KarlinAltschul, ScoringScheme};
use alae::core::{AlaeAligner, AlaeConfig};
use alae::workload::{MutationProfile, QuerySpec, TextSpec, WorkloadBuilder};

fn main() {
    // A 50 k-residue synthetic protein database and three 300-residue
    // queries extracted through the homologous mutation channel.
    let workload = WorkloadBuilder::new(
        TextSpec::protein(50_000, 11),
        QuerySpec {
            count: 3,
            length: 300,
            mutation: MutationProfile::HOMOLOGOUS,
            seed: 12,
        },
    )
    .build();
    let scheme = ScoringScheme::PROTEIN_DEFAULT;
    let evalue = 10.0;
    println!(
        "protein database: {} residues; scheme {scheme}; E-value {evalue}",
        workload.database.character_count()
    );

    // Show the statistics behind the E-value → threshold conversion.
    let ka = KarlinAltschul::estimate(Alphabet::Protein, &scheme).unwrap();
    println!(
        "Karlin-Altschul parameters: lambda = {:.4}, K = {:.4}",
        ka.lambda, ka.k
    );

    let aligner = AlaeAligner::build(&workload.database, AlaeConfig::with_evalue(scheme, evalue));
    println!(
        "index sizes: BWT index {} KB, dominate index {} KB\n",
        aligner.bwt_index_size_bytes() / 1024,
        aligner.domination_index_size_bytes() / 1024
    );

    for (i, query) in workload.queries.iter().enumerate() {
        let result = aligner.align(query.codes());
        let best = result.hits.iter().map(|h| h.score).max().unwrap_or(0);
        println!(
            "query {} ({} residues): H = {}, {} hits, best score {} (bit score {:.1}, E = {:.2e})",
            i + 1,
            query.len(),
            result.threshold,
            result.hits.len(),
            best,
            ka.bit_score(best),
            ka.evalue(query.len(), workload.database.text_len(), best),
        );
        // Show the three strongest end pairs.
        let mut top = result.hits.clone();
        top.sort_by_key(|h| std::cmp::Reverse(h.score));
        for hit in top.iter().take(3) {
            println!(
                "    score {:>4} ending at text position {} / query position {}",
                hit.score,
                hit.end_text_1based(),
                hit.end_query_1based()
            );
        }
    }
}
