//! Protein database search: align protein queries (σ = 20) under the
//! protein scoring scheme ⟨1, −3, −11, −1⟩ with an E-value threshold, the
//! setup of the paper's UniParc experiments — driven through the unified
//! facade with per-record result shaping.
//!
//! ```bash
//! cargo run --release --example protein_search
//! ```

use alae::bioseq::{Alphabet, KarlinAltschul, ScoringScheme};
use alae::search::{IndexBuilder, SearchRequest, Searcher};
use alae::workload::{MutationProfile, QuerySpec, TextSpec, WorkloadBuilder};

fn main() {
    // A 50 k-residue synthetic protein database and three 300-residue
    // queries extracted through the homologous mutation channel.
    let workload = WorkloadBuilder::new(
        TextSpec::protein(50_000, 11),
        QuerySpec {
            count: 3,
            length: 300,
            mutation: MutationProfile::HOMOLOGOUS,
            seed: 12,
        },
    )
    .build();
    let scheme = ScoringScheme::PROTEIN_DEFAULT;
    let evalue = 10.0;
    println!(
        "protein database: {} residues; scheme {scheme}; E-value {evalue}",
        workload.database.character_count()
    );

    // Show the statistics behind the E-value → threshold conversion.
    let ka = KarlinAltschul::estimate(Alphabet::Protein, &scheme).unwrap();
    println!(
        "Karlin-Altschul parameters: lambda = {:.4}, K = {:.4}",
        ka.lambda, ka.k
    );

    let db = IndexBuilder::new().index(workload.database);
    // Keep only the three best hits per query — the facade shapes results
    // before they reach the caller.
    let request = SearchRequest::with_evalue(scheme, evalue).top_k(3);
    let searcher = Searcher::new(db, request);

    for (i, query) in workload.queries.iter().enumerate() {
        let response = searcher.search(query);
        let best = response.best().map_or(0, |hit| hit.score);
        println!(
            "query {} ({} residues): H = {}, {} hits ({} before top-k), best score {} \
             (bit score {:.1})",
            i + 1,
            query.len(),
            response.threshold,
            response.hits.len(),
            response.raw_hit_count,
            best,
            ka.bit_score(best),
        );
        // Hits are already in canonical order: strongest first.
        for hit in &response.hits {
            let record = if hit.name.is_empty() {
                format!("record {}", hit.record)
            } else {
                hit.name.to_string()
            };
            println!(
                "    score {:>4} ending at {record}:{} / query position {} (E = {:.2e})",
                hit.score,
                hit.record_end,
                hit.query_end,
                hit.evalue.unwrap_or(f64::NAN),
            );
        }
    }
}
