//! Quickstart: index a small DNA database, run an exact local-alignment
//! search with ALAE, and display the best alignment.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use alae::baseline::best_local_alignment;
use alae::bioseq::{Alphabet, ScoringScheme, Sequence, SequenceDatabase};
use alae::core::{AlaeAligner, AlaeConfig};

fn main() {
    // 1. Build a tiny database of two "chromosomes".
    let records = [
        Sequence::from_ascii_named(
            Alphabet::Dna,
            "chr1",
            b"TTGACCATTGCAGTCAGGTTCAACGGTACTGACGGTCAGTTCAGGATCCAGTTGACCATTGCA",
        )
        .unwrap(),
        Sequence::from_ascii_named(
            Alphabet::Dna,
            "chr2",
            b"ACGGTCAGTTCAGGATCCAGTTGACCATTGCAGTCAGGTTCAACGGTACT",
        )
        .unwrap(),
    ];
    let database = SequenceDatabase::from_sequences(Alphabet::Dna, records);
    println!(
        "database: {} records, {} characters",
        database.record_count(),
        database.character_count()
    );

    // 2. A query that is homologous (but not identical) to a region present
    //    in both records.
    let query = Sequence::from_ascii(Alphabet::Dna, b"CAGGATCCAGTTGACCATTACAGTCAGG").unwrap();
    println!("query: {} ({} characters)", query.to_ascii(), query.len());

    // 3. Configure ALAE with the paper's default scoring scheme
    //    ⟨1, −3, −5, −2⟩ and an explicit score threshold.
    let scheme = ScoringScheme::DEFAULT;
    let threshold = 15;
    let aligner = AlaeAligner::build(&database, AlaeConfig::with_threshold(scheme, threshold));

    // 4. Align.  The result contains every (text end, query end) pair whose
    //    best local alignment reaches the threshold, plus work counters.
    let result = aligner.align(query.codes());
    println!(
        "\n{} alignment end pairs with score >= {threshold}:",
        result.hits.len()
    );
    for hit in &result.hits {
        let location = database
            .locate(hit.end_text)
            .expect("hit ends inside a record");
        println!(
            "  score {:>3}  ends at {}:{} (query position {})",
            hit.score,
            database.record_name(location.record),
            location.offset,
            hit.end_query_1based(),
        );
    }
    println!(
        "\nwork: {} entries calculated, {} reused ({}% reuse), {} forks",
        result.stats.calculated_entries(),
        result.stats.reused_entries,
        result.stats.reusing_ratio().round(),
        result.stats.forks_started,
    );

    // 5. For display, trace the single best alignment with the
    //    Smith-Waterman traceback from the baseline crate.
    if let Some(alignment) = best_local_alignment(database.text(), query.codes(), &scheme) {
        println!(
            "\nbest alignment (score {}, text {}..{}, query {}..{}):",
            alignment.score,
            alignment.text_start,
            alignment.text_end,
            alignment.query_start,
            alignment.query_end
        );
        println!(
            "{}",
            alignment.render(database.text(), query.codes(), |c| {
                Alphabet::Dna.decode_code(c) as char
            })
        );
    }
}
