//! Quickstart: index a small DNA database once, search it through the
//! unified `alae::search` facade, and display the best alignment.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use alae::baseline::best_local_alignment;
use alae::bioseq::{Alphabet, ScoringScheme, Sequence};
use alae::search::{EngineKind, IndexedDatabase, SearchRequest, Searcher};

fn main() {
    // 1. Build and index a tiny database of two "chromosomes".  The
    //    IndexedDatabase handle is cheap to clone and shares its memory.
    let records = [
        Sequence::from_ascii_named(
            Alphabet::Dna,
            "chr1",
            b"TTGACCATTGCAGTCAGGTTCAACGGTACTGACGGTCAGTTCAGGATCCAGTTGACCATTGCA",
        )
        .unwrap(),
        Sequence::from_ascii_named(
            Alphabet::Dna,
            "chr2",
            b"ACGGTCAGTTCAGGATCCAGTTGACCATTGCAGTCAGGTTCAACGGTACT",
        )
        .unwrap(),
    ];
    let db = IndexedDatabase::from_sequences(Alphabet::Dna, records);
    println!(
        "database: {} records, {} characters",
        db.record_count(),
        db.database().character_count()
    );

    // 2. A query that is homologous (but not identical) to a region present
    //    in both records.
    let query = Sequence::from_ascii(Alphabet::Dna, b"CAGGATCCAGTTGACCATTACAGTCAGG").unwrap();
    println!("query: {} ({} characters)", query.to_ascii(), query.len());

    // 3. Describe the search: the ALAE engine with the paper's default
    //    scoring scheme ⟨1, −3, −5, −2⟩ and an explicit score threshold.
    let scheme = ScoringScheme::DEFAULT;
    let threshold = 15;
    let request = SearchRequest::with_threshold(scheme, threshold).engine(EngineKind::Alae);
    let searcher = Searcher::new(db.clone(), request);

    // 4. Search.  Hits arrive record-resolved (record name, 1-based
    //    in-record coordinates) in canonical order: best score first.
    let response = searcher.search(&query);
    println!(
        "\n{} alignment end pairs with score >= {threshold}:",
        response.hits.len()
    );
    for hit in &response.hits {
        println!(
            "  score {:>3}  ends at {}:{} (query position {}, E = {:.2e})",
            hit.score,
            hit.name,
            hit.record_end,
            hit.query_end,
            hit.evalue.unwrap_or(f64::NAN),
        );
    }
    let stats = response.counters.as_alae().expect("the ALAE engine ran");
    println!(
        "\nwork: {} entries calculated, {} reused ({}% reuse), {} forks",
        stats.calculated_entries(),
        stats.reused_entries,
        stats.reusing_ratio().round(),
        stats.forks_started,
    );

    // 5. For display, trace the single best alignment with the
    //    Smith-Waterman traceback from the baseline crate.
    let text = db.database().text();
    if let Some(alignment) = best_local_alignment(text, query.codes(), &scheme) {
        let span = db
            .database()
            .locate_range(alignment.text_start, alignment.text_end)
            .expect("the best alignment lies inside one record");
        println!(
            "\nbest alignment (score {}, {}:{}..{}, query {}..{}):",
            alignment.score,
            span.name,
            span.start,
            span.end,
            alignment.query_start,
            alignment.query_end
        );
        println!(
            "{}",
            alignment.render(text, query.codes(), |c| {
                Alphabet::Dna.decode_code(c) as char
            })
        );
    }
}
