//! Genome-scale homology search (scaled): align mutated "mouse" queries
//! against a synthetic "human" chromosome and compare ALAE with the
//! BLAST-like heuristic and the exact BWT-SW baseline — the workload shape
//! of Tables 2 and 3 of the paper.
//!
//! ```bash
//! cargo run --release --example genome_search
//! ```

use alae::bioseq::ScoringScheme;
use alae::blast::{BlastConfig, BlastLikeAligner};
use alae::bwtsw::{BwtswAligner, BwtswConfig};
use alae::core::{AlaeAligner, AlaeConfig};
use alae::suffix::TextIndex;
use alae::workload::{MutationProfile, QuerySpec, TextSpec, WorkloadBuilder};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A 200 kb synthetic chromosome with genome-like repeat structure, and
    // five 1 kb queries extracted from it through a homologous mutation
    // channel (~95% identity with occasional indels).
    let text_len = 200_000;
    let query_len = 1_000;
    let workload = WorkloadBuilder::new(
        TextSpec::dna(text_len, 2024),
        QuerySpec {
            count: 5,
            length: query_len,
            mutation: MutationProfile::HOMOLOGOUS,
            seed: 7,
        },
    )
    .build();
    println!(
        "text: {} characters; {} queries of ~{} characters",
        workload.database.character_count(),
        workload.queries.len(),
        query_len
    );

    // Index once, share across the exact aligners.
    let build_start = Instant::now();
    let index = Arc::new(TextIndex::new(
        workload.database.text().to_vec(),
        workload.database.alphabet().code_count(),
    ));
    println!("index built in {:.2?}", build_start.elapsed());

    let scheme = ScoringScheme::DEFAULT;
    let alae = AlaeAligner::with_index(
        index.clone(),
        workload.database.alphabet(),
        AlaeConfig::with_evalue(scheme, 10.0),
    );

    let mut total = (0usize, 0usize, 0usize);
    let mut times = (0.0f64, 0.0f64, 0.0f64);
    for (i, query) in workload.queries.iter().enumerate() {
        let start = Instant::now();
        let alae_result = alae.align(query.codes());
        times.0 += start.elapsed().as_secs_f64();
        let threshold = alae_result.threshold;

        let blast = BlastLikeAligner::build(
            &workload.database,
            BlastConfig::for_alphabet(workload.database.alphabet(), scheme, threshold),
        );
        let start = Instant::now();
        let blast_result = blast.align(query.codes());
        times.1 += start.elapsed().as_secs_f64();

        let bwtsw = BwtswAligner::with_index(index.clone(), BwtswConfig::new(scheme, threshold));
        let start = Instant::now();
        let bwtsw_result = bwtsw.align(query.codes());
        times.2 += start.elapsed().as_secs_f64();

        println!(
            "query {}: H = {threshold}; ALAE {} hits, BLAST-like {} hits, BWT-SW {} hits \
             (filtering {:.0}%, reuse {:.0}%)",
            i + 1,
            alae_result.hits.len(),
            blast_result.hits.len(),
            bwtsw_result.hits.len(),
            alae_result
                .stats
                .filtering_ratio(bwtsw_result.stats.calculated_entries),
            alae_result.stats.reusing_ratio(),
        );
        assert_eq!(
            alae_result.hits.len(),
            bwtsw_result.hits.len(),
            "the two exact engines must agree"
        );
        total.0 += alae_result.hits.len();
        total.1 += blast_result.hits.len();
        total.2 += bwtsw_result.hits.len();
    }

    println!(
        "\n           {:>12} {:>12} {:>12}",
        "ALAE", "BLAST-like", "BWT-SW"
    );
    println!("hits       {:>12} {:>12} {:>12}", total.0, total.1, total.2);
    println!(
        "time (s)   {:>12.3} {:>12.3} {:>12.3}",
        times.0, times.1, times.2
    );
    println!(
        "\nALAE and BWT-SW report identical result sets (exact); the heuristic may miss \
         alignments whose seeds are broken by mutations."
    );
}
