//! Genome-scale homology search (scaled): align mutated "mouse" queries
//! against a synthetic "human" chromosome, comparing engines through the
//! unified facade and fanning the query batch out over threads — the
//! workload shape of Tables 2 and 3 of the paper, served the way a search
//! service would run it.
//!
//! ```bash
//! cargo run --release --example genome_search
//! ```

use alae::bioseq::ScoringScheme;
use alae::search::{EngineKind, IndexBuilder, SearchRequest, Searcher};
use alae::workload::{MutationProfile, QuerySpec, TextSpec, WorkloadBuilder};
use std::time::Instant;

fn main() {
    // A 100 kb synthetic chromosome with genome-like repeat structure, and
    // three 1 kb queries extracted from it through a homologous mutation
    // channel (~95% identity with occasional indels).
    let text_len = 100_000;
    let query_len = 1_000;
    let workload = WorkloadBuilder::new(
        TextSpec::dna(text_len, 2024),
        QuerySpec {
            count: 3,
            length: query_len,
            mutation: MutationProfile::HOMOLOGOUS,
            seed: 7,
        },
    )
    .build();
    println!(
        "text: {} characters; {} queries of ~{} characters",
        workload.database.character_count(),
        workload.queries.len(),
        query_len
    );

    // Index once; every engine (and every thread) shares this handle.
    let build_start = Instant::now();
    let db = IndexBuilder::new().index(workload.database);
    println!("index built in {:.2?}", build_start.elapsed());

    let scheme = ScoringScheme::DEFAULT;
    let request = SearchRequest::with_evalue(scheme, 10.0);

    // Run the whole batch through each engine via the same facade.
    let engines = [EngineKind::Alae, EngineKind::BlastLike, EngineKind::Bwtsw];
    let mut totals = Vec::new();
    for kind in engines {
        let searcher = Searcher::new(db.clone(), request.engine(kind));
        let start = Instant::now();
        let responses = searcher.search_batch(&workload.queries, 1);
        let elapsed = start.elapsed().as_secs_f64();
        let hits: usize = responses.iter().map(|r| r.hits.len()).sum();
        totals.push((kind, hits, elapsed, responses));
    }

    // Per-query detail from the ALAE run (exactness + work counters).
    let responses_of = |wanted: EngineKind| {
        &totals
            .iter()
            .find(|(kind, ..)| *kind == wanted)
            .expect("engine ran")
            .3
    };
    let alae_responses = responses_of(EngineKind::Alae);
    let bwtsw_responses = responses_of(EngineKind::Bwtsw);
    for (i, (alae, bwtsw)) in alae_responses
        .iter()
        .zip(bwtsw_responses.iter())
        .enumerate()
    {
        let stats = alae.counters.as_alae().expect("ALAE ran");
        let bwtsw_stats = bwtsw.counters.as_bwtsw().expect("BWT-SW ran");
        println!(
            "query {}: H = {}; ALAE {} hits, BWT-SW {} hits (filtering {:.0}%, reuse {:.0}%)",
            i + 1,
            alae.threshold,
            alae.hits.len(),
            bwtsw.hits.len(),
            stats.filtering_ratio(bwtsw_stats.calculated_entries),
            stats.reusing_ratio(),
        );
        assert_eq!(alae.hits, bwtsw.hits, "the two exact engines must agree");
    }

    println!("\n{:>14} {:>10} {:>10}", "engine", "hits", "time (s)");
    for (kind, hits, elapsed, _) in &totals {
        println!("{:>14} {:>10} {:>10.3}", kind.to_string(), hits, elapsed);
    }

    // The same batch fans out over threads against the shared index —
    // bit-identical results, service-style throughput (speedups need more
    // cores than queries are long; correctness holds regardless).
    let searcher = Searcher::new(db, request.engine(EngineKind::Alae));
    for threads in [2, 4] {
        let start = Instant::now();
        let responses = searcher.search_batch(&workload.queries, threads);
        let elapsed = start.elapsed().as_secs_f64();
        let hits: usize = responses.iter().map(|r| r.hits.len()).sum();
        assert_eq!(
            responses
                .iter()
                .flat_map(|r| r.hits.iter())
                .collect::<Vec<_>>(),
            alae_responses
                .iter()
                .flat_map(|r| r.hits.iter())
                .collect::<Vec<_>>(),
            "batch results must be identical at any thread count"
        );
        println!("ALAE batch x{threads} threads: {hits} hits in {elapsed:.3} s");
    }

    println!(
        "\nALAE and BWT-SW report identical result sets (exact); the heuristic may miss \
         alignments whose seeds are broken by mutations."
    );
}
