//! Scoring-scheme sensitivity: how the choice of ⟨sa, sb, sg, ss⟩ affects
//! ALAE's work, together with the analytic entry bounds of Section 6 —
//! the narrative behind Figures 9 and 10 of the paper, with each scheme
//! driven through the unified facade over one shared index.
//!
//! ```bash
//! cargo run --release --example scheme_sensitivity
//! ```

use alae::bioseq::{Alphabet, ScoringScheme};
use alae::core::analysis::{bwtsw_default_bound, expected_entry_bound};
use alae::search::{IndexBuilder, SearchRequest, Searcher};
use alae::workload::{MutationProfile, QuerySpec, TextSpec, WorkloadBuilder};
use std::time::Instant;

fn main() {
    let text_len = 100_000;
    let query_len = 500;
    let workload = WorkloadBuilder::new(
        TextSpec::dna(text_len, 5),
        QuerySpec {
            count: 1,
            length: query_len,
            mutation: MutationProfile::HOMOLOGOUS,
            seed: 6,
        },
    )
    .build();
    let query = &workload.queries[0];

    // The suffix-trie index is built once; every scheme's searcher shares it.
    let db = IndexBuilder::new().index(workload.database);

    println!(
        "{:>16} {:>6} {:>22} {:>14} {:>12} {:>10}",
        "scheme", "q", "analytic bound", "calculated", "reuse %", "time"
    );
    for scheme in ScoringScheme::FIGURE9_SCHEMES {
        let model = expected_entry_bound(Alphabet::Dna, &scheme);
        let bound = model
            .map(|m| format!("{:.2} m n^{:.3}", m.coefficient, m.exponent))
            .unwrap_or_else(|| "n/a".to_string());
        let searcher = Searcher::new(db.clone(), SearchRequest::with_evalue(scheme, 10.0));
        let start = Instant::now();
        let response = searcher.search(query);
        let elapsed = start.elapsed();
        let stats = response.counters.as_alae().expect("the ALAE engine ran");
        println!(
            "{:>16} {:>6} {:>22} {:>14} {:>12.1} {:>10.2?}",
            scheme.to_string(),
            scheme.q(),
            bound,
            stats.calculated_entries(),
            stats.reusing_ratio(),
            elapsed,
        );
    }

    println!(
        "\nFor the default scheme the analytic ALAE bound is {:.0} entries versus {:.0} for \
         BWT-SW (m = {query_len}, n = {text_len}).",
        expected_entry_bound(Alphabet::Dna, &ScoringScheme::DEFAULT)
            .unwrap()
            .bound(query_len, text_len),
        bwtsw_default_bound(query_len, text_len),
    );
    println!(
        "Weak mismatch penalties (e.g. <1,-1,-5,-2>) widen gap regions and raise the exponent, \
         which is why the paper reports ALAE losing to BLAST only there (Figure 9)."
    );
}
