//! Streaming hits through a `HitSink` — the runnable version of the
//! README's `FnSink` snippet.
//!
//! ```bash
//! cargo run --release --example stream_hits
//! ```
//!
//! `Searcher::search_into` delivers hits to a sink as the engine shapes
//! them, best score first, so a consumer that only wants the top hit can
//! stop the engine after one delivery instead of collecting everything.

use alae::bioseq::ScoringScheme;
use alae::search::{
    CollectSink, EngineKind, FnSink, IndexBuilder, SearchHit, SearchRequest, Searcher, SinkFlow,
};
use alae::workload::{MutationProfile, QuerySpec, TextSpec, WorkloadBuilder};

fn main() {
    let built = WorkloadBuilder::new(
        TextSpec::dna(40_000, 3),
        QuerySpec {
            count: 1,
            length: 40,
            mutation: MutationProfile::HOMOLOGOUS,
            seed: 7,
        },
    )
    .build();
    let db = IndexBuilder::new().index(built.database);
    let query = &built.queries[0];

    let request =
        SearchRequest::with_threshold(ScoringScheme::DEFAULT, 20).engine(EngineKind::Alae);
    let searcher = Searcher::new(db, request);

    // The README snippet: take only the best hit, then tell the engine to
    // stop — hits arrive best-first, so early termination is cheap.
    let mut best = None;
    let summary = searcher.search_into(
        query,
        &mut FnSink(|hit: SearchHit| {
            println!(
                "best hit: {}:{} score {} (E {:.2e})",
                hit.name,
                hit.record_end,
                hit.score,
                hit.evalue.unwrap_or(f64::NAN),
            );
            best = Some(hit);
            SinkFlow::Stop // take only the best hit
        }),
    );
    println!(
        "delivered {} of {} raw hits, stopped early: {}",
        summary.delivered, summary.raw_hit_count, summary.stopped_early,
    );
    assert!(summary.delivered <= 1);

    // A sink that keeps everything: `CollectSink` is the buffering
    // counterpart (`searcher.search()` is the same thing plus shaping).
    let mut all = CollectSink::default();
    let summary = searcher.search_into(query, &mut all);
    println!(
        "collected {} hits, termination {:?}",
        all.hits.len(),
        summary.termination,
    );
    if let Some(best) = best {
        assert_eq!(all.hits.first(), Some(&best));
    }
}
