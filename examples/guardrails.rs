//! Guardrails: deadlines, work budgets and cancellation on a real
//! workload — the runnable version of the README's "Guardrails &
//! graceful degradation" snippet.
//!
//! ```bash
//! cargo run --release --example guardrails
//! ```
//!
//! Every engine polls its guard cooperatively: a tripped limit unwinds
//! cleanly and returns the hits found so far (a valid partial result in
//! canonical order) plus a typed `Termination` saying why the run ended.

use alae::bioseq::ScoringScheme;
use alae::search::{EngineKind, IndexBuilder, SearchRequest, Searcher, Termination};
use alae::workload::{MutationProfile, QuerySpec, TextSpec, WorkloadBuilder};
use std::time::Duration;

fn main() {
    // A deterministic 80 kb DNA database with homologous queries, so the
    // searches below do real work and find real hits.
    let built = WorkloadBuilder::new(
        TextSpec::dna(80_000, 5),
        QuerySpec {
            count: 4,
            length: 48,
            mutation: MutationProfile::HOMOLOGOUS,
            seed: 42,
        },
    )
    .build();
    let db = IndexBuilder::new().index(built.database);
    let query = &built.queries[0];

    // The README snippet: a request carrying every limit at once.  Units
    // are machine-independent where possible — the work budget counts the
    // same DP cells / extension attempts the engines' counters report.
    let request = SearchRequest::with_threshold(ScoringScheme::DEFAULT, 30)
        .engine(EngineKind::Alae)
        .deadline(Duration::from_millis(50)) // wall-clock cap per query
        .work_budget(5_000_000) // DP cells / extension attempts
        .memory_budget(64 << 20); // live arena + DP-row bytes

    let searcher = Searcher::new(db.clone(), request);
    let response = searcher.search(query);
    match &response.termination {
        Termination::Complete => println!(
            "complete: {} hits (exhaustive), {} work units",
            response.hits.len(),
            response.counters.calculated_entries(),
        ),
        Termination::DeadlineExceeded | Termination::BudgetExhausted | Termination::Cancelled => {
            println!(
                "partial: {} valid hits before the guardrail tripped",
                response.hits.len()
            )
        }
        Termination::EnginePanicked => println!("isolated panic; sibling queries unaffected"),
        Termination::Invalid(err) => eprintln!("rejected: {err}"),
    }

    // Force a budget trip: a budget far below what the query needs still
    // returns whatever was found within it, never an error.
    let strict = SearchRequest::with_threshold(ScoringScheme::DEFAULT, 30)
        .engine(EngineKind::Alae)
        .work_budget(500);
    let partial = Searcher::new(db.clone(), strict).search(query);
    println!(
        "work_budget=500 -> {:?} with {} hits after {} work units",
        partial.termination,
        partial.hits.len(),
        partial.counters.calculated_entries(),
    );
    assert!(matches!(
        partial.termination,
        Termination::BudgetExhausted | Termination::Complete
    ));

    // Cooperative cancellation: any thread holding the token can stop
    // every in-flight and future search on this searcher...
    let searcher = Searcher::new(db, request);
    searcher.cancel();
    let cancelled = searcher.search(query);
    println!("after cancel() -> {:?}", cancelled.termination);
    assert_eq!(cancelled.termination, Termination::Cancelled);

    // ...and resetting the token restores service.
    searcher.cancel_token().reset();
    let resumed = searcher.search(query);
    println!(
        "after reset -> {:?} with {} hits",
        resumed.termination,
        resumed.hits.len()
    );
}
