//! Persist an index, serve it over TCP, and search it with the client —
//! the full `save -> open -> serve -> search` life cycle in one process.
//!
//! ```bash
//! cargo run --release --example serve_search
//! ```
//!
//! In production the three roles live in separate processes: an indexing
//! job calls [`IndexedDatabase::save`] once, the `alae-serve` binary opens
//! the file (memory-mapped, no suffix-array rebuild) and listens, and any
//! number of clients connect with [`alae::client::Client`].  This example
//! runs them all in-process so it needs no free well-known port.

use alae::bioseq::{Alphabet, ScoringScheme, Sequence};
use alae::client::Client;
use alae::search::{IndexBuilder, IndexedDatabase, SearchRequest};
use alae_server::{Server, ServerConfig};
use std::time::Instant;

fn main() {
    // 1. Build an index and persist it to a single file.
    let records = [
        Sequence::from_ascii_named(
            Alphabet::Dna,
            "chr1",
            b"TTGACCATTGCAGTCAGGTTCAACGGTACTGACGGTCAGTTCAGGATCCAGTTGACCATTGCA",
        )
        .unwrap(),
        Sequence::from_ascii_named(
            Alphabet::Dna,
            "chr2",
            b"ACGGTCAGTTCAGGATCCAGTTGACCATTGCAGTCAGGTTCAACGGTACT",
        )
        .unwrap(),
    ];
    let db = IndexBuilder::new().index(alae::bioseq::SequenceDatabase::from_sequences(
        Alphabet::Dna,
        records,
    ));

    let mut path = std::env::temp_dir();
    path.push(format!("alae-serve-example-{}.idx", std::process::id()));
    db.save(&path).expect("save index");
    println!("saved index to {}", path.display());

    // 2. Reopen it the way `alae-serve --index <file>` does: memory-mapped,
    //    checksum-verified, no suffix-array rebuild.
    let started = Instant::now();
    let reopened = IndexedDatabase::open(&path).expect("open index");
    println!(
        "reopened in {:?} ({} records, {} text bytes)",
        started.elapsed(),
        reopened.record_count(),
        reopened.text_len()
    );

    // 3. Serve it on an ephemeral port, plus the HTTP front (`/metrics`,
    //    `/healthz`, `POST /search`) the way `alae-serve --http` does.
    let server = Server::bind("127.0.0.1:0", reopened, ServerConfig::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let http = server.http_front("127.0.0.1:0").expect("bind http front");
    let http_addr = http.local_addr().expect("http addr");
    println!("serving on {addr} (http on {http_addr})");
    let server = std::sync::Arc::new(server);
    {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = server.serve();
        });
    }
    std::thread::spawn(move || {
        let _ = http.serve();
    });

    // 4. Search over TCP.  The response is the same `SearchResponse` the
    //    in-process facade returns — hits, counters, termination and all.
    let request = SearchRequest::with_threshold(ScoringScheme::DEFAULT, 12).top_k(5);
    let query = Sequence::from_ascii(Alphabet::Dna, b"CAGGATCCAGTTGACCATTACAGTCAGG").unwrap();
    let mut client = Client::connect(addr).expect("connect");
    let response = client.search(&request, &query).expect("search over TCP");

    println!(
        "{} hits over the wire (threshold H = {}):",
        response.hits.len(),
        response.threshold
    );
    for hit in &response.hits {
        println!(
            "  {}: ends at record offset {}, query offset {}, score {}",
            hit.name, hit.record_end, hit.query_end, hit.score
        );
    }

    // 5. The query above is already on the scrape: one termination
    //    counter moved, and the latency histogram saw the engine time.
    //    (Over the wire this is `curl http://{http_addr}/metrics`.)
    let scrape = server.metrics().render();
    for line in scrape
        .lines()
        .filter(|l| l.starts_with("alae_query_terminations_total") && !l.ends_with(" 0"))
    {
        println!("metrics: {line}");
    }

    std::fs::remove_file(&path).ok();
}
